// Lifetime and aliasing tests of the zero-copy delivery path: move-mode
// plays must end with every held slot *pointing into the plan's immutable
// block arena* (pure view forwarding, zero payload memcpys), while combine
// plays and fault-hooked runs must fall back to copy-through storage that
// never aliases the arena. Replays — both on a raw player and through the
// service layer's plan cache — must leave the arena bit-identical.
//
// Suites are named Rt*/Svc* so the sanitizer CI jobs
// (ctest -R '^(Rt|Ft|Svc)') include them.
#include "rt/plan.hpp"

#include "ft/fault_model.hpp"
#include "rt/async_player.hpp"
#include "rt/checksum.hpp"
#include "rt/player.hpp"
#include "routing/schedule_export.hpp"
#include "svc/session.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace hcube::rt {
namespace {

using routing::BroadcastDiscipline;
using sim::PortModel;
using sim::Schedule;

constexpr std::size_t kBlock = 24; // deliberately not a multiple of 8

Schedule broadcast_schedule(hc::dim_t n, sim::packet_t packets) {
    return routing::make_tree_broadcast(trees::build_sbt(n, 0),
                                        BroadcastDiscipline::port_oriented,
                                        packets,
                                        PortModel::one_port_full_duplex);
}

/// Every slot of a clean move-mode run must be the arena's canonical block
/// for its packet — by *pointer identity*, which is what proves delivery
/// forwarded views instead of copying payloads.
template <class P>
void expect_all_views_in_arena(const Plan& plan, const P& player) {
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const std::span<const double> b =
            player.block(plan.slot_node[s], plan.slot_packet[s]);
        ASSERT_EQ(b.size(), plan.block_elems) << "slot " << s;
        EXPECT_EQ(b.data(), plan.arena_block(plan.slot_packet[s]))
            << "slot " << s << " holds a copy, not an arena view";
    }
}

TEST(RtArena, BlocksAreCacheLineAlignedAndCanonical) {
    const Plan plan =
        compile_plan(broadcast_schedule(4, 3), DataMode::move, kBlock, 2);
    ASSERT_EQ(plan.arena_stride % 8, 0u);
    ASSERT_GE(plan.arena_stride, plan.block_elems);
    for (sim::packet_t p = 0; p < 3; ++p) {
        const double* block = plan.arena_block(p);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) % 64, 0u)
            << "packet " << p;
        EXPECT_EQ(block_checksum({block, plan.block_elems}),
                  canonical_checksum(p, plan.block_elems))
            << "packet " << p;
    }
}

TEST(RtArena, BarrierMovePlayForwardsViewsWithZeroCopies) {
    const Plan plan =
        compile_plan(broadcast_schedule(4, 2), DataMode::move, kBlock, 2);
    Player player(plan);
    const PlayStats stats = player.play();
    ASSERT_TRUE(stats.clean());
    EXPECT_EQ(stats.bytes_copied, 0u);
    expect_all_views_in_arena(plan, player);
}

TEST(RtArena, AsyncMovePlayForwardsViewsWithZeroCopies) {
    const Plan plan =
        compile_plan(broadcast_schedule(5, 2), DataMode::move, kBlock, 2);
    AsyncPlayer player(plan);
    const PlayStats stats = player.play();
    ASSERT_TRUE(stats.clean());
    EXPECT_EQ(stats.bytes_copied, 0u);
    expect_all_views_in_arena(plan, player);
}

TEST(RtArena, ReplayLeavesTheArenaBitIdentical) {
    const Plan plan =
        compile_plan(broadcast_schedule(4, 4), DataMode::move, kBlock, 2);
    const std::vector<double> before = plan.arena;
    AsyncPlayer player(plan);
    ASSERT_TRUE(player.play().clean());
    ASSERT_TRUE(player.play().clean());
    expect_all_views_in_arena(plan, player);
    ASSERT_EQ(plan.arena.size(), before.size());
    EXPECT_EQ(std::memcmp(plan.arena.data(), before.data(),
                          before.size() * sizeof(double)),
              0)
        << "a play mutated the immutable arena";
}

TEST(RtArena, CombinePlansUseDistinctAccumulatorStorage) {
    const Schedule forward = broadcast_schedule(3, 2);
    const Schedule reduction =
        routing::reverse_broadcast_for_reduce(forward, 0);
    const Plan plan =
        compile_plan(reduction, DataMode::combine, kBlock, 2);
    // Combine mode has no arena: accumulators mutate in place, so a view
    // of another node's slot would go stale mid-flight.
    EXPECT_TRUE(plan.arena.empty());
    Player player(plan);
    const PlayStats stats = player.play();
    ASSERT_TRUE(stats.clean());
    // Copy-through: every sent block was staged into the ring.
    EXPECT_EQ(stats.bytes_copied,
              stats.blocks_delivered * kBlock * sizeof(double));
}

/// A hook that delivers everything untouched — its mere presence must
/// force copy-through (a hook may mutate staged bytes, which must never
/// alias the immutable arena).
class PassThroughHook final : public ft::ChannelFaultHook {
public:
    ft::PushVerdict on_push(std::uint32_t, std::uint32_t,
                            std::span<double>) noexcept override {
        return ft::PushVerdict::deliver;
    }
};

TEST(RtArena, FaultHookForcesCopyThroughAndClearingRestoresZeroCopy) {
    const Plan plan =
        compile_plan(broadcast_schedule(4, 2), DataMode::move, kBlock, 2);
    AsyncPlayer player(plan);

    PassThroughHook hook;
    player.set_fault_hook(&hook);
    const PlayStats hooked = player.play();
    ASSERT_TRUE(hooked.clean());
    EXPECT_EQ(hooked.bytes_copied,
              2 * hooked.blocks_delivered * kBlock * sizeof(double))
        << "hooked runs must stage into the ring and copy out again";
    // Copy-through still ends in the canonical final state (by value, not
    // by pointer — slots now live in player-owned storage).
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const std::span<const double> b =
            player.block(plan.slot_node[s], plan.slot_packet[s]);
        ASSERT_EQ(b.size(), plan.block_elems);
        EXPECT_NE(b.data(), plan.arena_block(plan.slot_packet[s]));
        EXPECT_EQ(block_checksum(b),
                  canonical_checksum(plan.slot_packet[s], plan.block_elems));
    }

    player.set_fault_hook(nullptr);
    const PlayStats clean = player.play();
    ASSERT_TRUE(clean.clean());
    EXPECT_EQ(clean.bytes_copied, 0u);
    expect_all_views_in_arena(plan, player);
}

TEST(SvcArena, CachedPlanReplaysStayVerifiedAndZeroCopy) {
    svc::SessionParams params;
    params.threads = 2;
    svc::Session session(4, params);
    const svc::Signature sig{svc::Op::broadcast, svc::Family::sbt, 4, 0, 4,
                             kBlock, PortModel::one_port_full_duplex};
    const svc::ExecStats first = session.execute(sig);
    EXPECT_TRUE(first.verified);
    EXPECT_FALSE(first.cache_hit);
    EXPECT_EQ(first.bytes_copied, 0u);
    for (int rep = 0; rep < 3; ++rep) {
        const svc::ExecStats repeat = session.execute(sig);
        EXPECT_TRUE(repeat.verified);
        EXPECT_TRUE(repeat.cache_hit);
        EXPECT_EQ(repeat.bytes_copied, 0u)
            << "cache replay " << rep << " fell off the zero-copy path";
    }
}

} // namespace
} // namespace hcube::rt
