// Tests for the Spanning Binomial Tree (paper §3.1).
#include "trees/sbt.hpp"

#include "hc/bits.hpp"
#include "hc/cube.hpp"
#include "trees/spanning_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hcube::trees {
namespace {

struct SbtCase {
    dim_t n;
    node_t source;
};

class SbtSweep : public ::testing::TestWithParam<SbtCase> {};

TEST_P(SbtSweep, IsAValidSpanningTree) {
    const auto [n, s] = GetParam();
    const SpanningTree tree = build_sbt(n, s);
    EXPECT_NO_THROW(validate_tree(tree));
    EXPECT_EQ(tree.root, s);
    EXPECT_EQ(tree.height, n);
}

TEST_P(SbtSweep, LevelsAreBinomialAndEqualHammingDistance) {
    const auto [n, s] = GetParam();
    const SpanningTree tree = build_sbt(n, s);
    std::vector<std::uint64_t> per_level(static_cast<std::size_t>(n) + 1, 0);
    for (node_t i = 0; i < tree.node_count(); ++i) {
        // In the SBT, tree level equals cube distance from the source.
        EXPECT_EQ(tree.level[i], hc::hamming(i, s));
        ++per_level[static_cast<std::size_t>(tree.level[i])];
    }
    for (dim_t l = 0; l <= n; ++l) {
        EXPECT_EQ(per_level[static_cast<std::size_t>(l)], hc::binomial(n, l));
    }
}

TEST_P(SbtSweep, SubtreeThroughPortMHas2PowNMinus1MinusMNodes) {
    const auto [n, s] = GetParam();
    const SpanningTree tree = build_sbt(n, s);
    const auto sizes = tree.subtree_sizes();
    for (dim_t m = 0; m < n; ++m) {
        EXPECT_EQ(sizes[static_cast<std::size_t>(m)],
                  std::uint64_t{1} << (n - 1 - m));
    }
}

TEST_P(SbtSweep, ParentComplementsHighestOneOfRelativeAddress) {
    const auto [n, s] = GetParam();
    for (node_t i = 0; i < (node_t{1} << n); ++i) {
        if (i == s) {
            EXPECT_EQ(sbt_parent(i, s, n), SpanningTree::kNoParent);
            continue;
        }
        const node_t p = sbt_parent(i, s, n);
        const dim_t k = hc::highest_one_bit(i ^ s);
        EXPECT_EQ(p, hc::flip_bit(i, k));
        // Consistency: i appears among its parent's children.
        const auto kids = sbt_children(p, s, n);
        EXPECT_NE(std::ranges::find(kids, i), kids.end());
    }
}

TEST_P(SbtSweep, ChildrenComplementLeadingZeroes) {
    const auto [n, s] = GetParam();
    for (node_t i = 0; i < (node_t{1} << n); ++i) {
        const dim_t k = hc::highest_one_bit(i ^ s);
        const auto kids = sbt_children(i, s, n);
        EXPECT_EQ(kids.size(), static_cast<std::size_t>(n - 1 - k));
        for (const node_t c : kids) {
            EXPECT_GT(hc::highest_one_bit(c ^ s), k);
            EXPECT_EQ(sbt_parent(c, s, n), i);
        }
    }
}

TEST_P(SbtSweep, ChildrenStoredLargestSubtreeFirst) {
    const auto [n, s] = GetParam();
    const SpanningTree tree = build_sbt(n, s);
    // Count descendants per child; stored order must be non-increasing.
    std::vector<std::uint64_t> desc(tree.node_count(), 1);
    const auto order = tree.bfs_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        for (const node_t c : tree.children[*it]) {
            desc[*it] += desc[c];
        }
    }
    for (node_t u = 0; u < tree.node_count(); ++u) {
        for (std::size_t c = 0; c + 1 < tree.children[u].size(); ++c) {
            EXPECT_GE(desc[tree.children[u][c]],
                      desc[tree.children[u][c + 1]]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    DimensionsAndSources, SbtSweep,
    ::testing::Values(SbtCase{1, 0}, SbtCase{2, 3}, SbtCase{3, 0},
                      SbtCase{4, 0b1010}, SbtCase{5, 0b10111},
                      SbtCase{6, 0}, SbtCase{7, 0b1010101},
                      SbtCase{8, 0b11001100}, SbtCase{10, 0b1111100000}),
    [](const auto& param_info) {
        return "n" + std::to_string(param_info.param.n) + "_s" +
               std::to_string(param_info.param.source);
    });

// Figure 1 of the paper: the SBT rooted at node 0 of a 4-cube.
TEST(Sbt, Figure1Structure) {
    const SpanningTree tree = build_sbt(4, 0);
    // Root children: 1, 2, 4, 8 (complement any bit of c = 0).
    EXPECT_EQ(tree.children[0], (std::vector<node_t>{1, 2, 4, 8}));
    // Node 1 (0001): leading zeroes at bits 1..3 -> children 3, 5, 9.
    EXPECT_EQ(tree.children[1], (std::vector<node_t>{3, 5, 9}));
    // Node 5 (0101): leading zero at bit 3 -> child 13.
    EXPECT_EQ(tree.children[5], (std::vector<node_t>{13}));
    // Node 15 (1111) is a leaf.
    EXPECT_TRUE(tree.children[15].empty());
    // Half the cube hangs off node 1.
    EXPECT_EQ(tree.subtree_sizes()[0], 8u);
}

} // namespace
} // namespace hcube::trees
