// Tests of netd — svc::Service over the wire: a daemon serving the
// collective service on Unix-domain and TCP endpoints with the net
// framing, blocking clients driving verified runs (including cache-hit
// repeats and concurrent clients), and the garbage-tolerance of the
// request loop.
#include "net/netd.hpp"

#include "model/broadcast_model.hpp"
#include "net/frame.hpp"
#include "svc/signature.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

namespace hcube::net {
namespace {

using hc::node_t;

svc::Signature broadcast_sig(dim_t n, node_t root = 0) {
    svc::Signature s;
    s.op = svc::Op::broadcast;
    s.family = svc::Family::sbt;
    s.n = n;
    s.root = root;
    s.packets = 2;
    s.block_elems = 16;
    return s;
}

NetdParams uds_params(const std::string& path) {
    NetdParams p;
    p.service.session.threads = 2;
    // Synthetic machine constants: skip the calibration probes.
    p.service.session.comm = model::CommParams{1.0, 1e-6};
    p.endpoint = Endpoint::unix_path(path);
    return p;
}

std::string temp_sock(const char* tag) {
    const char* base = std::getenv("TMPDIR");
    return std::string(base != nullptr ? base : "/tmp") + "/hcnetd-" + tag +
           "-" + std::to_string(::getpid()) + ".sock";
}

TEST(NetSvc, UdsRunIsVerifiedAndRepeatHitsCache) {
    const std::string path = temp_sock("basic");
    Netd daemon(4, uds_params(path));
    NetClient client(daemon.endpoint());

    const OpResponseMsg first = client.run(broadcast_sig(4));
    EXPECT_EQ(first.status, static_cast<std::uint8_t>(svc::Status::ok));
    EXPECT_TRUE(first.verified);
    EXPECT_FALSE(first.cache_hit);
    EXPECT_GT(first.blocks_delivered, 0u);
    EXPECT_EQ(first.transport,
              static_cast<std::uint8_t>(ft::TransportClass::uds));

    const OpResponseMsg again = client.run(broadcast_sig(4));
    EXPECT_EQ(again.status, static_cast<std::uint8_t>(svc::Status::ok));
    EXPECT_TRUE(again.verified);
    EXPECT_TRUE(again.cache_hit);
    EXPECT_EQ(daemon.served(), 2u);
    ::unlink(path.c_str());
}

TEST(NetSvc, BadSignatureComesBackFailedNotTorn) {
    const std::string path = temp_sock("bad");
    Netd daemon(3, uds_params(path));
    NetClient client(daemon.endpoint());

    // MSBT with packets not divisible by n: schedule generation throws,
    // the daemon answers failed and keeps serving.
    svc::Signature bad = broadcast_sig(3);
    bad.family = svc::Family::msbt;
    bad.packets = 7;
    const OpResponseMsg resp = client.run(bad);
    EXPECT_EQ(resp.status, static_cast<std::uint8_t>(svc::Status::failed));
    EXPECT_FALSE(resp.error.empty());

    const OpResponseMsg good = client.run(broadcast_sig(3));
    EXPECT_EQ(good.status, static_cast<std::uint8_t>(svc::Status::ok));
    ::unlink(path.c_str());
}

TEST(NetSvc, GarbageFrameGetsFailedResponse) {
    const std::string path = temp_sock("garbage");
    Netd daemon(3, uds_params(path));

    const int fd = connect_endpoint(daemon.endpoint(), 5'000);
    const std::vector<std::uint8_t> garbage = {0xff, 0x00, 0x42};
    ASSERT_EQ(write_frame(fd, garbage), IoStatus::ok);
    std::vector<std::uint8_t> frame;
    ASSERT_EQ(read_frame(fd, frame), IoStatus::ok);
    OpResponseMsg resp;
    ASSERT_TRUE(decode_op_response(frame, resp));
    EXPECT_EQ(resp.status, static_cast<std::uint8_t>(svc::Status::failed));
    EXPECT_FALSE(resp.error.empty());
    ::close(fd);

    // The daemon survived: a real client still gets served.
    NetClient client(daemon.endpoint());
    EXPECT_EQ(client.run(broadcast_sig(3)).status,
              static_cast<std::uint8_t>(svc::Status::ok));
    ::unlink(path.c_str());
}

TEST(NetSvc, ConcurrentClientsAllVerified) {
    const std::string path = temp_sock("conc");
    Netd daemon(4, uds_params(path));

    constexpr int kClients = 4;
    constexpr int kRequests = 6;
    std::atomic<int> ok{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            NetClient client(daemon.endpoint());
            for (int i = 0; i < kRequests; ++i) {
                // Mixed roots: some requests share cache entries, some
                // build fresh ones, all concurrently.
                const OpResponseMsg resp = client.run(broadcast_sig(
                    4, static_cast<node_t>((c + i) % 4)));
                if (resp.status ==
                        static_cast<std::uint8_t>(svc::Status::ok) &&
                    resp.verified) {
                    ok.fetch_add(1);
                }
            }
        });
    }
    for (std::thread& t : clients) {
        t.join();
    }
    EXPECT_EQ(ok.load(), kClients * kRequests);
    EXPECT_EQ(daemon.served(),
              static_cast<std::uint64_t>(kClients * kRequests));
    ::unlink(path.c_str());
}

TEST(NetSvc, TcpLoopbackSmoke) {
    NetdParams p;
    p.service.session.threads = 2;
    p.service.session.comm = model::CommParams{1.0, 1e-6};
    p.endpoint = Endpoint::tcp("127.0.0.1", 0);
    Netd daemon(3, p);
    ASSERT_NE(daemon.endpoint().port, 0); // ephemeral port resolved

    NetClient client(daemon.endpoint());
    const OpResponseMsg resp = client.run(broadcast_sig(3));
    EXPECT_EQ(resp.status, static_cast<std::uint8_t>(svc::Status::ok));
    EXPECT_TRUE(resp.verified);
    EXPECT_EQ(resp.transport,
              static_cast<std::uint8_t>(ft::TransportClass::tcp));
}

} // namespace
} // namespace hcube::net
