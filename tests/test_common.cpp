// Unit tests for the common utilities (table/CSV/CLI/PRNG/check).
#include "hypercoll.hpp"

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <cstdio>
#include <fstream>
#include <set>

namespace hcube {
namespace {

TEST(Check, EnsureThrowsWithLocation) {
    try {
        HCUBE_ENSURE_MSG(1 == 2, "math broke");
        FAIL() << "should have thrown";
    } catch (const check_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("math broke"), std::string::npos);
    }
}

TEST(Table, RendersAlignedColumns) {
    TextTable table({"algo", "T"});
    table.add_row({"SBT", "12"});
    table.add_row({"MSBT", "7"});
    const std::string out = table.render();
    EXPECT_NE(out.find("| algo "), std::string::npos);
    EXPECT_NE(out.find("| MSBT | 7 "), std::string::npos);
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, PadsShortRowsRejectsLongOnes) {
    TextTable table({"a", "b"});
    table.add_row({"x"});
    EXPECT_THROW(table.add_row({"1", "2", "3"}), check_error);
}

TEST(Table, FormatHelpers) {
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_seconds(2.5), "2.500 s");
    EXPECT_EQ(format_seconds(2.5e-3), "2.500 ms");
    EXPECT_EQ(format_seconds(2.5e-6), "2.500 us");
}

TEST(Csv, WritesQuotedCells) {
    const std::string path = "/tmp/hypercoll_test.csv";
    {
        CsvWriter csv(path, {"a", "b"});
        csv.write_row({"plain", "has,comma"});
        csv.write_row({"has\"quote", "x"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "plain,\"has,comma\"");
    std::getline(in, line);
    EXPECT_EQ(line, "\"has\"\"quote\",x");
    std::remove(path.c_str());
}

TEST(Cli, ParsesFlagsAndValues) {
    const char* argv[] = {"prog",   "pos1", "--dim", "7",
                          "--msg=60", "--rate", "2.5",  "--csv"};
    CliOptions opts(8, argv);
    EXPECT_EQ(opts.get_int("dim", 0), 7);
    EXPECT_EQ(opts.get_int("msg", 0), 60);
    EXPECT_TRUE(opts.has("csv"));
    EXPECT_FALSE(opts.has("absent"));
    EXPECT_DOUBLE_EQ(opts.get_double("rate", 0), 2.5);
    EXPECT_EQ(opts.get_int("absent", 42), 42);
    ASSERT_EQ(opts.positional().size(), 1u);
    EXPECT_EQ(opts.positional()[0], "pos1");
}

TEST(Cli, RejectsMalformedNumbers) {
    const char* argv[] = {"prog", "--dim", "7x"};
    CliOptions opts(3, argv);
    EXPECT_THROW((void)opts.get_int("dim", 0), std::invalid_argument);
}

TEST(Prng, DeterministicAcrossInstances) {
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Prng, ShuffleIsAPermutation) {
    std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    SplitMix64 rng(7);
    rng.shuffle(items);
    std::set<int> seen(items.begin(), items.end());
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Prng, BoundedValuesInRange) {
    SplitMix64 rng(99);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
}

} // namespace
} // namespace hcube
