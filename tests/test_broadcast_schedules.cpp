// Behavioural tests for the broadcast schedules (paper §3): every schedule
// must pass the cycle executor under its port model, deliver all packets to
// all nodes, and use exactly the number of routing steps behind Table 3.
#include "routing/broadcast.hpp"

#include "trees/bst.hpp"
#include "trees/hp.hpp"
#include "trees/sbt.hpp"
#include "trees/tcbt.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hcube::routing {
namespace {

using sim::CycleStats;
using sim::execute_schedule;
using trees::SpanningTree;

/// Asserts that every node ends up holding every packet.
void expect_full_broadcast(const CycleStats& stats, const Schedule& schedule) {
    const node_t count = node_t{1} << schedule.n;
    for (node_t i = 0; i < count; ++i) {
        for (packet_t p = 0; p < schedule.packet_count; ++p) {
            EXPECT_TRUE(stats.holds(i, p))
                << "node " << i << " missing packet " << p;
        }
    }
}

struct Case {
    dim_t n;
    node_t source;
    packet_t packets;
};

class BroadcastSweep : public ::testing::TestWithParam<Case> {};

TEST_P(BroadcastSweep, SbtPortOrientedTakesNTimesPCycles) {
    const auto [n, s, P] = GetParam();
    const SpanningTree tree = trees::build_sbt(n, s);
    const Schedule schedule = port_oriented_broadcast(tree, P);
    for (const auto model : {sim::PortModel::one_port_half_duplex,
                             sim::PortModel::one_port_full_duplex,
                             sim::PortModel::all_port}) {
        const auto stats = execute_schedule(schedule, model);
        EXPECT_EQ(stats.makespan, static_cast<std::uint32_t>(n) * P);
        expect_full_broadcast(stats, schedule);
    }
}

TEST_P(BroadcastSweep, SbtPipelinedAllPortTakesPPlusNMinus1) {
    const auto [n, s, P] = GetParam();
    const SpanningTree tree = trees::build_sbt(n, s);
    const Schedule schedule =
        paced_broadcast(tree, P, sim::PortModel::all_port);
    const auto stats = execute_schedule(schedule, sim::PortModel::all_port);
    EXPECT_EQ(stats.makespan, P + static_cast<std::uint32_t>(n) - 1);
    expect_full_broadcast(stats, schedule);
}

TEST_P(BroadcastSweep, MsbtFullDuplexTakesTotalPacketsPlusN) {
    const auto [n, s, Pps] = GetParam();
    const Schedule schedule =
        msbt_broadcast(n, s, Pps, sim::PortModel::one_port_full_duplex);
    const auto stats =
        execute_schedule(schedule, sim::PortModel::one_port_full_duplex);
    // ceil(M/B) = n * Pps packets; T = ceil(M/B) + log N (§3.3.2).
    EXPECT_EQ(stats.makespan,
              static_cast<std::uint32_t>(n) * Pps +
                  static_cast<std::uint32_t>(n));
    expect_full_broadcast(stats, schedule);
}

TEST_P(BroadcastSweep, MsbtHalfDuplexTakesTwicePacketsPlusNMinus1) {
    const auto [n, s, Pps] = GetParam();
    const Schedule schedule =
        msbt_broadcast(n, s, Pps, sim::PortModel::one_port_half_duplex);
    const auto stats =
        execute_schedule(schedule, sim::PortModel::one_port_half_duplex);
    // T = 2 ceil(M/B) + log N - 1 (§3.3.2).
    EXPECT_EQ(stats.makespan,
              2 * static_cast<std::uint32_t>(n) * Pps +
                  static_cast<std::uint32_t>(n) - 1);
    expect_full_broadcast(stats, schedule);
}

TEST_P(BroadcastSweep, MsbtAllPortTakesPerSubtreePacketsPlusN) {
    const auto [n, s, Pps] = GetParam();
    const Schedule schedule =
        msbt_broadcast(n, s, Pps, sim::PortModel::all_port);
    const auto stats = execute_schedule(schedule, sim::PortModel::all_port);
    // T = ceil(M / (B log N)) + log N (§3.3.2).
    EXPECT_EQ(stats.makespan, Pps + static_cast<std::uint32_t>(n));
    expect_full_broadcast(stats, schedule);
}

TEST_P(BroadcastSweep, HamiltonianPathPipelines) {
    const auto [n, s, P] = GetParam();
    const node_t N = node_t{1} << n;
    const SpanningTree tree =
        trees::build_hamiltonian_path(n, s, trees::HpVariant::source_at_end);

    // Half duplex: 2P + N - 3 steps — matches the HP row of Table 3.
    const Schedule half =
        paced_broadcast(tree, P, sim::PortModel::one_port_half_duplex);
    const auto half_stats =
        execute_schedule(half, sim::PortModel::one_port_half_duplex);
    EXPECT_EQ(half_stats.makespan, 2 * P + N - 3);
    expect_full_broadcast(half_stats, half);

    // Full duplex: P + N - 2 steps (the paper's row says P + N - 3; its own
    // Table 1 delay of N - 1 at P = 1 agrees with our count — see DESIGN.md).
    const Schedule full =
        paced_broadcast(tree, P, sim::PortModel::one_port_full_duplex);
    const auto full_stats =
        execute_schedule(full, sim::PortModel::one_port_full_duplex);
    EXPECT_EQ(full_stats.makespan, P + N - 2);
    expect_full_broadcast(full_stats, full);
}

TEST_P(BroadcastSweep, TcbtPacedMatchesTable3) {
    const auto [n, s, P] = GetParam();
    if (n < 3 || n > 7) {
        GTEST_SKIP() << "TCBT formulas hold for n >= 3; embeddings kept <= 7 "
                        "here for test time";
    }
    const SpanningTree tree = trees::build_tcbt(n, s);

    const Schedule half =
        paced_broadcast(tree, P, sim::PortModel::one_port_half_duplex);
    const auto half_stats =
        execute_schedule(half, sim::PortModel::one_port_half_duplex);
    EXPECT_EQ(half_stats.makespan,
              3 * P + 2 * static_cast<std::uint32_t>(n) - 5);
    expect_full_broadcast(half_stats, half);

    const Schedule full =
        paced_broadcast(tree, P, sim::PortModel::one_port_full_duplex);
    const auto full_stats =
        execute_schedule(full, sim::PortModel::one_port_full_duplex);
    EXPECT_EQ(full_stats.makespan,
              2 * (P + static_cast<std::uint32_t>(n) - 2));
    expect_full_broadcast(full_stats, full);

    const Schedule all = paced_broadcast(tree, P, sim::PortModel::all_port);
    const auto all_stats = execute_schedule(all, sim::PortModel::all_port);
    EXPECT_EQ(all_stats.makespan, P + static_cast<std::uint32_t>(n) - 1);
    expect_full_broadcast(all_stats, all);
}

INSTANTIATE_TEST_SUITE_P(
    DimensionsSourcesPackets, BroadcastSweep,
    ::testing::Values(Case{2, 0, 1}, Case{2, 3, 4}, Case{3, 0, 1},
                      Case{3, 6, 5}, Case{4, 0, 3}, Case{5, 0b10101, 2},
                      Case{6, 0, 4}, Case{7, 0b1111111, 2}, Case{8, 1, 3}),
    [](const auto& param_info) {
        return "n" + std::to_string(param_info.param.n) + "_s" +
               std::to_string(param_info.param.source) + "_p" +
               std::to_string(param_info.param.packets);
    });

// BST broadcast is not one of the paper's broadcast algorithms, but the
// generic paced pipeline must still deliver on it (it is a spanning tree).
TEST(Broadcast, PacedWorksOnBstToo) {
    const SpanningTree tree = trees::build_bst(5, 0);
    const Schedule schedule =
        paced_broadcast(tree, 3, sim::PortModel::all_port);
    const auto stats = execute_schedule(schedule, sim::PortModel::all_port);
    expect_full_broadcast(stats, schedule);
    // Height log N (property 1) pipelines in P + height - 1 cycles.
    EXPECT_EQ(stats.makespan, 3u + 5 - 1);
}

// Table 2: steady-state cycles per distinct packet, measured as the
// makespan increase per additional packet.
TEST(Broadcast, Table2CyclesPerPacket) {
    const dim_t n = 5;
    const node_t s = 0;
    const auto measure = [&](auto&& make_schedule, sim::PortModel model) {
        const auto s1 = execute_schedule(make_schedule(8), model).makespan;
        const auto s2 = execute_schedule(make_schedule(16), model).makespan;
        return static_cast<double>(s2 - s1) / 8.0;
    };

    const SpanningTree hp =
        trees::build_hamiltonian_path(n, s, trees::HpVariant::source_at_end);
    EXPECT_DOUBLE_EQ(
        measure([&](packet_t p) { return paced_broadcast(
                        hp, p, sim::PortModel::one_port_half_duplex); },
                sim::PortModel::one_port_half_duplex),
        2.0);
    EXPECT_DOUBLE_EQ(
        measure([&](packet_t p) { return paced_broadcast(
                        hp, p, sim::PortModel::one_port_full_duplex); },
                sim::PortModel::one_port_full_duplex),
        1.0);

    const SpanningTree sbt = trees::build_sbt(n, s);
    EXPECT_DOUBLE_EQ(
        measure([&](packet_t p) { return port_oriented_broadcast(sbt, p); },
                sim::PortModel::one_port_half_duplex),
        static_cast<double>(n));

    const SpanningTree tcbt = trees::build_tcbt(n, s);
    EXPECT_DOUBLE_EQ(
        measure([&](packet_t p) { return paced_broadcast(
                        tcbt, p, sim::PortModel::one_port_half_duplex); },
                sim::PortModel::one_port_half_duplex),
        3.0);
    EXPECT_DOUBLE_EQ(
        measure([&](packet_t p) { return paced_broadcast(
                        tcbt, p, sim::PortModel::one_port_full_duplex); },
                sim::PortModel::one_port_full_duplex),
        2.0);

    // MSBT full duplex: 1 cycle per distinct packet; all-port: 1/n.
    EXPECT_DOUBLE_EQ(
        measure([&](packet_t p) { return msbt_broadcast(
                        n, s, p, sim::PortModel::one_port_full_duplex); },
                sim::PortModel::one_port_full_duplex),
        static_cast<double>(n)); // p is per-subtree: n·p distinct packets
    EXPECT_DOUBLE_EQ(
        measure([&](packet_t p) { return msbt_broadcast(
                        n, s, p, sim::PortModel::all_port); },
                sim::PortModel::all_port),
        1.0); // n distinct packets per cycle
}

// Table 1: propagation delay = makespan at one packet (per distinct stream).
TEST(Broadcast, Table1PropagationDelays) {
    const dim_t n = 6;
    const node_t N = node_t{1} << n;
    const node_t s = 0;

    const SpanningTree hp =
        trees::build_hamiltonian_path(n, s, trees::HpVariant::source_at_end);
    EXPECT_EQ(execute_schedule(
                  paced_broadcast(hp, 1, sim::PortModel::one_port_half_duplex),
                  sim::PortModel::one_port_half_duplex)
                  .makespan,
              N - 1);

    const SpanningTree sbt = trees::build_sbt(n, s);
    EXPECT_EQ(execute_schedule(port_oriented_broadcast(sbt, 1),
                               sim::PortModel::one_port_half_duplex)
                  .makespan,
              static_cast<std::uint32_t>(n));

    const SpanningTree tcbt = trees::build_tcbt(n, s);
    // Paper: 2 log N - 2 under both one-port models; our rooting yields
    // 2 log N - 2 at P = 1 for half duplex (3·1 + 2n - 5) and 2n - 2 for
    // full duplex (2(1 + n - 2)).
    EXPECT_EQ(execute_schedule(
                  paced_broadcast(tcbt, 1,
                                  sim::PortModel::one_port_half_duplex),
                  sim::PortModel::one_port_half_duplex)
                  .makespan,
              2 * static_cast<std::uint32_t>(n) - 2);
    EXPECT_EQ(execute_schedule(
                  paced_broadcast(tcbt, 1, sim::PortModel::all_port),
                  sim::PortModel::all_port)
                  .makespan,
              static_cast<std::uint32_t>(n));

    // MSBT: 2 log N full duplex, 3 log N - 1 half duplex, log N + 1 all-port.
    EXPECT_EQ(execute_schedule(
                  msbt_broadcast(n, s, 1, sim::PortModel::one_port_full_duplex),
                  sim::PortModel::one_port_full_duplex)
                  .makespan,
              2 * static_cast<std::uint32_t>(n));
    EXPECT_EQ(execute_schedule(
                  msbt_broadcast(n, s, 1, sim::PortModel::one_port_half_duplex),
                  sim::PortModel::one_port_half_duplex)
                  .makespan,
              3 * static_cast<std::uint32_t>(n) - 1);
    EXPECT_EQ(execute_schedule(
                  msbt_broadcast(n, s, 1, sim::PortModel::all_port),
                  sim::PortModel::all_port)
                  .makespan,
              static_cast<std::uint32_t>(n) + 1);
}

// §3.4's HP variation: with the source at the center of the path, the
// propagation delay halves (two arms of ~N/2) while full-duplex pipelining
// drops to one packet every two cycles (the root alternates arms) — "these
// variations only affect delays, and the number of cycles per packet, by at
// most a factor of two".
TEST(Broadcast, HamiltonianCenterVariantTradesDelayForRate) {
    const dim_t n = 5;
    const node_t N = node_t{1} << n;
    const SpanningTree center = trees::build_hamiltonian_path(
        n, 0, trees::HpVariant::source_at_center);

    // One packet: delay ~ N/2 instead of N - 1.
    const auto delay =
        execute_schedule(
            paced_broadcast(center, 1, sim::PortModel::one_port_full_duplex),
            sim::PortModel::one_port_full_duplex)
            .makespan;
    EXPECT_LE(delay, N / 2 + 1);
    EXPECT_GE(delay, N / 2 - 1);

    // Long pipeline: ~2 cycles per packet (vs 1 for the end variant).
    const auto t8 =
        execute_schedule(
            paced_broadcast(center, 8, sim::PortModel::one_port_full_duplex),
            sim::PortModel::one_port_full_duplex)
            .makespan;
    const auto t24 =
        execute_schedule(
            paced_broadcast(center, 24,
                            sim::PortModel::one_port_full_duplex),
            sim::PortModel::one_port_full_duplex)
            .makespan;
    EXPECT_EQ((t24 - t8) / 16, 2u);

    // All ports: both arms stream concurrently at 1 cycle/packet, delay N/2.
    const auto all = execute_schedule(
        paced_broadcast(center, 8, sim::PortModel::all_port),
        sim::PortModel::all_port);
    EXPECT_EQ(all.makespan, 8u + N / 2 - 1);
    expect_full_broadcast(all, paced_broadcast(center, 8,
                                               sim::PortModel::all_port));
}

// Translation invariance: every algorithm works from *every* source node
// (exhaustive for small cubes).
TEST(Broadcast, ExhaustiveSourceSweep) {
    for (const dim_t n : {dim_t{3}, dim_t{4}}) {
        for (node_t s = 0; s < (node_t{1} << n); ++s) {
            {
                const auto schedule = msbt_broadcast(
                    n, s, 2, sim::PortModel::one_port_full_duplex);
                const auto stats = execute_schedule(
                    schedule, sim::PortModel::one_port_full_duplex);
                EXPECT_EQ(stats.makespan, 2u * static_cast<std::uint32_t>(n) +
                                              static_cast<std::uint32_t>(n));
                expect_full_broadcast(stats, schedule);
            }
            {
                const SpanningTree tree = trees::build_sbt(n, s);
                const auto schedule = port_oriented_broadcast(tree, 2);
                const auto stats = execute_schedule(
                    schedule, sim::PortModel::one_port_half_duplex);
                EXPECT_EQ(stats.makespan,
                          2u * static_cast<std::uint32_t>(n));
                expect_full_broadcast(stats, schedule);
            }
            {
                const SpanningTree tree = trees::build_bst(n, s);
                const auto schedule =
                    paced_broadcast(tree, 2, sim::PortModel::all_port);
                const auto stats =
                    execute_schedule(schedule, sim::PortModel::all_port);
                expect_full_broadcast(stats, schedule);
            }
        }
    }
}

} // namespace
} // namespace hcube::routing
