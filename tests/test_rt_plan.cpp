// Tests for the schedule -> execution-plan compiler: slot assignment,
// channel numbering, CSR bucketing, and the feasibility checks it shares
// with the cycle executor (availability, duplicate delivery, link
// capacity).
#include "rt/plan.hpp"

#include "common/check.hpp"
#include "routing/broadcast.hpp"
#include "routing/schedule_export.hpp"
#include "rt/async_player.hpp"
#include "rt/player.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

namespace hcube::rt {
namespace {

using sim::Schedule;
using sim::ScheduledSend;

Schedule two_hop_chain() {
    // 0 -> 1 in cycle 0, 1 -> 3 in cycle 1 on a 2-cube.
    Schedule s;
    s.n = 2;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 0, 1, 0}, {1, 1, 3, 0}};
    return s;
}

TEST(RtPlan, LowersChainIntoSlotsChannelsAndBuckets) {
    const Plan plan = compile_plan(two_hop_chain(), DataMode::move, 4, 1);
    EXPECT_EQ(plan.cycles, 2u);
    EXPECT_EQ(plan.channel_count, 2u);
    EXPECT_EQ(plan.total_slots, 3u); // held by 0, 1 and 3
    EXPECT_EQ(plan.lowered_count(), 2u);
    EXPECT_EQ(plan.send_begin.back(), 2u);
    EXPECT_EQ(plan.recv_begin.back(), 2u);
    EXPECT_EQ(plan.seeded_slots.size(), 1u); // the initial holder
    EXPECT_NE(plan.slot_of(0, 0), Plan::kNoSlot);
    EXPECT_NE(plan.slot_of(1, 0), Plan::kNoSlot);
    EXPECT_NE(plan.slot_of(3, 0), Plan::kNoSlot);
    EXPECT_EQ(plan.slot_of(2, 0), Plan::kNoSlot);
}

TEST(RtPlan, OwnerPartitionIsBalancedAndContiguous) {
    Plan plan;
    plan.n = 4;
    plan.workers = 3;
    std::uint32_t last = 0;
    std::uint32_t counts[3] = {0, 0, 0};
    for (node_t i = 0; i < 16; ++i) {
        const std::uint32_t owner = plan.owner_of(i);
        ASSERT_LT(owner, 3u);
        ASSERT_GE(owner, last); // contiguous, non-decreasing
        last = owner;
        ++counts[owner];
    }
    for (const std::uint32_t c : counts) {
        EXPECT_GE(c, 5u);
        EXPECT_LE(c, 6u);
    }
}

TEST(RtPlan, RejectsForwardingBeforeArrival) {
    Schedule s = two_hop_chain();
    s.sends[1].cycle = 0; // forwards in the cycle it is still in flight
    EXPECT_THROW((void)compile_plan(s, DataMode::move, 4, 1), check_error);
}

TEST(RtPlan, RejectsDuplicateDeliveryInMoveMode) {
    Schedule s;
    s.n = 2;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 0, 1, 0}, {1, 0, 1, 0}};
    EXPECT_THROW((void)compile_plan(s, DataMode::move, 4, 1), check_error);
}

TEST(RtPlan, RejectsTwoPacketsOnOneLinkInOneCycle) {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {0, 0};
    s.sends = {{0, 0, 1, 0}, {0, 0, 1, 1}};
    EXPECT_THROW((void)compile_plan(s, DataMode::move, 4, 1), check_error);
}

TEST(RtPlan, RejectsNonNeighborSends) {
    Schedule s;
    s.n = 2;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 0, 3, 0}};
    EXPECT_THROW((void)compile_plan(s, DataMode::move, 4, 1), check_error);
}

TEST(RtPlan, CombineModeAcceptsDuplicateArrivalsAndSeedsEverySlot) {
    // Reversed broadcast: the root receives packet p once per child, and
    // every node's slot starts as its own contribution.
    const auto tree = trees::build_sbt(3, 0);
    const sim::Schedule forward = routing::make_tree_broadcast(
        tree, routing::BroadcastDiscipline::port_oriented, 2,
        sim::PortModel::one_port_full_duplex);
    const sim::Schedule reduction =
        routing::reverse_broadcast_for_reduce(forward, 0);
    const Plan plan = compile_plan(reduction, DataMode::combine, 4, 2);
    EXPECT_EQ(plan.mode, DataMode::combine);
    EXPECT_EQ(plan.seeded_slots.size(), plan.total_slots);
    // 8 nodes x 2 packets, every node touches every packet.
    EXPECT_EQ(plan.total_slots, 16u);
    // Cycle count is preserved by time reversal.
    const auto stats = sim::execute_schedule(
        forward, sim::PortModel::one_port_full_duplex);
    EXPECT_EQ(plan.cycles, stats.makespan);
}

TEST(RtPlan, BucketsPartitionEverySendByCycleAndOwner) {
    const sim::Schedule schedule = routing::make_msbt_broadcast(
        4, 0, 8, sim::PortModel::one_port_full_duplex);
    const std::uint32_t workers = 3;
    for (const PlanLayout layout : {PlanLayout::compact, PlanLayout::wide}) {
        const Plan plan = compile_plan(schedule, DataMode::move, 2, workers,
                                       8, layout);
        ASSERT_EQ(plan.send_begin.size(),
                  std::size_t{plan.cycles} * workers + 1);
        EXPECT_EQ(plan.send_begin.back(), schedule.sends.size());
        EXPECT_EQ(plan.recv_begin.back(), schedule.sends.size());
        // Every action sits in the bucket of its cycle and its node's
        // owner, in both encodings. The bucketed accessors hide the
        // layout; the node is recovered through the action's slot.
        const auto send_node = [&plan](std::size_t pos) {
            return plan.slot_node[plan.bucket_send(pos).slot];
        };
        const auto recv_node = [&plan](std::size_t pos) {
            return plan.slot_node[plan.bucket_recv(pos).slot];
        };
        for (std::uint32_t c = 0; c < plan.cycles; ++c) {
            for (std::uint32_t w = 0; w < workers; ++w) {
                const std::size_t b = std::size_t{c} * workers + w;
                for (std::size_t i = plan.send_begin[b];
                     i < plan.send_begin[b + 1]; ++i) {
                    EXPECT_EQ(plan.owner_of(send_node(i)), w);
                }
                for (std::size_t i = plan.recv_begin[b];
                     i < plan.recv_begin[b + 1]; ++i) {
                    EXPECT_EQ(plan.owner_of(recv_node(i)), w);
                }
            }
        }
    }
}

TEST(RtPlan, DepGraphChainHasExactEdges) {
    // Two-hop chain, one worker: the send and receive of lowered hop l
    // interleave as ids 2l and 2l+1, so the chain is send 0, recv 1,
    // send 2, recv 3 in execution order. Expected edges: data 0 -> 1 and
    // 2 -> 3, availability 1 -> 2 (the forward reads the slot the first
    // receive produced). The seeded first send depends on nothing.
    const Plan plan = compile_plan(two_hop_chain(), DataMode::move, 4, 1);
    ASSERT_EQ(plan.action_count(), 4u);
    EXPECT_TRUE(plan.is_send_action(0));
    EXPECT_FALSE(plan.is_send_action(1));
    EXPECT_TRUE(plan.is_send_action(2));
    EXPECT_FALSE(plan.is_send_action(3));
    EXPECT_EQ(Plan::lowered_of(2), 1u);
    EXPECT_EQ(Plan::lowered_of(3), 1u);

    const std::vector<std::uint32_t> expected_deps = {0, 1, 1, 1};
    EXPECT_EQ(plan.dep_count, expected_deps);

    const auto successors = [&plan](std::uint32_t id) {
        std::vector<std::uint32_t> out(
            plan.succ.begin() + plan.succ_begin[id],
            plan.succ.begin() + plan.succ_begin[id + 1]);
        std::ranges::sort(out);
        return out;
    };
    EXPECT_EQ(successors(0), std::vector<std::uint32_t>{1});
    EXPECT_EQ(successors(1), std::vector<std::uint32_t>{2});
    EXPECT_EQ(successors(2), std::vector<std::uint32_t>{3});
    EXPECT_EQ(successors(3), std::vector<std::uint32_t>{});
}

TEST(RtPlan, CapacityEdgesThrottleChannelReuseToRingDepth) {
    // Four sends down one link, ring depth 2: the k-th send must wait for
    // the (k-2)-th receive (capacity edge) on top of the ring-order edge
    // from the (k-1)-th send, so the channel can never hold more than two
    // in-flight blocks no matter how threads interleave.
    Schedule s;
    s.n = 1;
    s.packet_count = 4;
    s.initial_holder = {0, 0, 0, 0};
    s.sends = {{0, 0, 1, 0}, {1, 0, 1, 1}, {2, 0, 1, 2}, {3, 0, 1, 3}};
    const Plan plan =
        compile_plan(s, DataMode::move, 4, 1, /*async_depth=*/2);
    EXPECT_EQ(plan.async_depth, 2u);
    // Interleaved (send k = id 2k, recv k = id 2k+1). Sends: seed, +ring,
    // then +ring+capacity twice. Recvs: +data, then +data+ring.
    const std::vector<std::uint32_t> expected_deps = {0, 1, 1, 2,
                                                      2, 2, 2, 2};
    EXPECT_EQ(plan.dep_count, expected_deps);
}

TEST(RtPlan, CombineSameCycleExchangeOrdersSendBeforeAccumulation) {
    // Pairwise exchange (one recursive-doubling allreduce step): node 1
    // sends its partial to node 0 and node 0 sends its partial to node 1
    // in the same cycle. Listed 1 -> 0 first, node 0's receive lowers
    // *before* its send, so only a send-side edge can order the pair: the
    // send must read slot (0, p)'s pre-accumulation value, matching the
    // barrier oracle's sends-before-receives rule within a cycle.
    Schedule s;
    s.n = 1;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 1, 0, 0}, {0, 0, 1, 0}};
    const Plan plan = compile_plan(s, DataMode::combine, 4, 1);
    // Interleaved: hop 0 (1 -> 0) is ids {0, 1}, hop 1 (0 -> 1) is {2, 3}.
    ASSERT_EQ(plan.action_count(), 4u);

    // Data edges 0 -> 1 and 2 -> 3; ordering edges 2 -> 1 (send before
    // the accumulation into its source slot) and 0 -> 3 (likewise, caught
    // on the receive side because there the send lowered first).
    const std::vector<std::uint32_t> expected_deps = {0, 2, 0, 2};
    EXPECT_EQ(plan.dep_count, expected_deps);
    const auto successors = [&plan](std::uint32_t id) {
        std::vector<std::uint32_t> out(
            plan.succ.begin() + plan.succ_begin[id],
            plan.succ.begin() + plan.succ_begin[id + 1]);
        std::ranges::sort(out);
        return out;
    };
    EXPECT_EQ(successors(0), (std::vector<std::uint32_t>{1, 3}));
    EXPECT_EQ(successors(2), (std::vector<std::uint32_t>{1, 3}));
}

TEST(RtPlan, EveryDependencyEdgePointsForward) {
    // The DAG argument from docs/RUNTIME.md, checked mechanically: every
    // edge's head sorts strictly after its tail in (cycle, sends-before-
    // recvs) order, so a feasible schedule can never compile into a
    // cyclic (deadlocking) dependency graph. The per-hop cycle comes from
    // the cycle CSR (binary search in the compact layout), which both
    // encodings carry.
    const auto check = [](const Plan& plan) {
        const auto key = [&plan](std::uint32_t id) -> std::uint64_t {
            const bool recv = !plan.is_send_action(id);
            const std::uint32_t cycle =
                plan.cycle_of_lowered(Plan::lowered_of(id));
            return std::uint64_t{cycle} * 2 + (recv ? 1 : 0);
        };
        for (std::uint32_t id = 0; id < plan.action_count(); ++id) {
            for (std::uint32_t e = plan.succ_begin[id];
                 e < plan.succ_begin[id + 1]; ++e) {
                ASSERT_LT(key(id), key(plan.succ[e]))
                    << "edge " << id << " -> " << plan.succ[e]
                    << " does not point forward";
            }
        }
    };
    check(compile_plan(routing::make_msbt_broadcast(
                           4, 0, 8, sim::PortModel::one_port_full_duplex),
                       DataMode::move, 2, 1));
    const sim::Schedule forward = routing::make_tree_broadcast(
        trees::build_sbt(4, 0), routing::BroadcastDiscipline::port_oriented,
        3, sim::PortModel::one_port_full_duplex);
    check(compile_plan(routing::reverse_broadcast_for_reduce(forward, 0),
                       DataMode::combine, 2, 1));
    // Recursive-doubling allreduce: every node both sends and receives the
    // same slot in every cycle, so the send-before-accumulation edges
    // (which run send -> receive *within* a cycle) appear everywhere.
    Schedule allreduce;
    allreduce.n = 3;
    allreduce.packet_count = 1;
    allreduce.initial_holder = {0};
    for (std::uint32_t d = 0; d < 3; ++d) {
        for (node_t v = 0; v < 8; ++v) {
            allreduce.sends.push_back(
                {d, v, static_cast<node_t>(v ^ (node_t{1} << d)), 0});
        }
    }
    check(compile_plan(allreduce, DataMode::combine, 2, 1));
}

// ------------------------------------------------------- layout selection

TEST(RtPlan, LayoutResolvesCompactInsideEnvelopeWideBeyond) {
    const Schedule chain = two_hop_chain();
    EXPECT_EQ(compile_plan(chain, DataMode::move, 4, 1).layout,
              PlanLayout::compact);
    EXPECT_EQ(compile_plan(chain, DataMode::move, 4, 1, 8,
                           PlanLayout::wide)
                  .layout,
              PlanLayout::wide);

    // A 21-cube is outside the compact envelope: automatic falls back to
    // the wide encoding, an explicit compact request is rejected.
    Schedule big;
    big.n = kCompactMaxDimension + 1;
    big.packet_count = 1;
    big.initial_holder = {0};
    big.sends = {{0, 0, 1, 0}};
    EXPECT_EQ(compile_plan(big, DataMode::move, 4, 1).layout,
              PlanLayout::wide);
    EXPECT_THROW((void)compile_plan(big, DataMode::move, 4, 1, 8,
                                    PlanLayout::compact),
                 check_error);
}

TEST(RtPlan, CompactEnvVarForcesWideLayout) {
    // HCUBE_PLAN_COMPACT=0 is the no-rebuild escape hatch: automatic
    // resolves to the wide reference encoding while it is set.
    ASSERT_EQ(setenv("HCUBE_PLAN_COMPACT", "0", 1), 0);
    const Plan wide = compile_plan(two_hop_chain(), DataMode::move, 4, 1);
    ASSERT_EQ(unsetenv("HCUBE_PLAN_COMPACT"), 0);
    EXPECT_EQ(wide.layout, PlanLayout::wide);
    EXPECT_FALSE(wide.flat_sends.empty());
    // Any other value (or absence) keeps the compact default.
    ASSERT_EQ(setenv("HCUBE_PLAN_COMPACT", "1", 1), 0);
    const Plan compact =
        compile_plan(two_hop_chain(), DataMode::move, 4, 1);
    ASSERT_EQ(unsetenv("HCUBE_PLAN_COMPACT"), 0);
    EXPECT_EQ(compact.layout, PlanLayout::compact);
}

// --------------------------------------- compact-vs-wide differential ----

/// Compiles `schedule` under both encodings and requires byte-identical
/// final memory from both engines — the wide layout is the pre-compaction
/// reference, so any decode slip in the packed accessors shows up here.
void expect_layouts_agree(const Schedule& schedule, DataMode mode,
                          const std::string& label) {
    SCOPED_TRACE(label);
    const Plan compact =
        compile_plan(schedule, mode, 4, 2, 8, PlanLayout::compact);
    const Plan wide = compile_plan(schedule, mode, 4, 2, 8, PlanLayout::wide);
    ASSERT_EQ(compact.layout, PlanLayout::compact);
    ASSERT_EQ(wide.layout, PlanLayout::wide);
    EXPECT_TRUE(compact.flat_sends.empty());
    EXPECT_TRUE(compact.sends.empty());
    EXPECT_EQ(compact.send_order.size(), wide.sends.size());
    EXPECT_LT(compact.resident_bytes(), wide.resident_bytes());

    const auto compare = [&](auto& packed_player, auto& ref_player,
                             const char* engine) {
        SCOPED_TRACE(engine);
        const PlayStats a = packed_player.play();
        const PlayStats b = ref_player.play();
        EXPECT_TRUE(a.clean());
        EXPECT_TRUE(b.clean());
        EXPECT_EQ(a.blocks_delivered, b.blocks_delivered);
        for (std::uint64_t s = 0; s < compact.total_slots; ++s) {
            const auto lhs = packed_player.block(compact.slot_node[s],
                                                 compact.slot_packet[s]);
            const auto rhs = ref_player.block(wide.slot_node[s],
                                              wide.slot_packet[s]);
            ASSERT_EQ(lhs.size(), rhs.size());
            ASSERT_EQ(std::memcmp(lhs.data(), rhs.data(),
                                  lhs.size() * sizeof(double)),
                      0)
                << "layouts diverge at slot " << s;
        }
    };
    Player barrier_packed(compact);
    Player barrier_ref(wide);
    compare(barrier_packed, barrier_ref, "barrier");
    AsyncPlayer async_packed(compact);
    AsyncPlayer async_ref(wide);
    compare(async_packed, async_ref, "async");
}

TEST(RtPlanLayoutDiff, EveryExportHookBothEngines) {
    using routing::BroadcastDiscipline;
    using routing::ScatterPolicy;
    for (const dim_t n : {4, 7}) {
        const std::string tag = " n=" + std::to_string(n);
        const auto sbt = trees::build_sbt(n, 0);
        const auto bst = trees::build_bst(n, 0);
        expect_layouts_agree(
            routing::make_tree_broadcast(
                sbt, BroadcastDiscipline::port_oriented, 4,
                sim::PortModel::one_port_full_duplex),
            DataMode::move, "sbt_bcast" + tag);
        expect_layouts_agree(
            routing::make_tree_broadcast(
                sbt, BroadcastDiscipline::paced, 4,
                sim::PortModel::one_port_full_duplex),
            DataMode::move, "sbt_paced_bcast" + tag);
        expect_layouts_agree(
            routing::make_msbt_broadcast(
                n, 0, static_cast<packet_t>(n) * 2,
                sim::PortModel::one_port_full_duplex),
            DataMode::move, "msbt_bcast" + tag);
        expect_layouts_agree(
            routing::make_tree_scatter(sbt, ScatterPolicy::descending, 2,
                                       sim::PortModel::one_port_full_duplex),
            DataMode::move, "sbt_scatter" + tag);
        expect_layouts_agree(
            routing::make_tree_scatter(bst, ScatterPolicy::cyclic, 2,
                                       sim::PortModel::one_port_full_duplex),
            DataMode::move, "bst_scatter" + tag);
        expect_layouts_agree(
            routing::make_tree_scatter(sbt, ScatterPolicy::per_port, 2,
                                       sim::PortModel::all_port),
            DataMode::move, "per_port_scatter" + tag);
        expect_layouts_agree(
            routing::make_tree_gather(sbt, ScatterPolicy::descending, 2,
                                      sim::PortModel::one_port_full_duplex),
            DataMode::move, "sbt_gather" + tag);
        expect_layouts_agree(
            routing::make_tree_gather(bst, ScatterPolicy::cyclic, 2,
                                      sim::PortModel::one_port_full_duplex),
            DataMode::move, "bst_gather" + tag);
        expect_layouts_agree(routing::make_allgather_schedule(n),
                             DataMode::move, "allgather" + tag);
        expect_layouts_agree(routing::make_alltoall_schedule(n, 1),
                             DataMode::move, "alltoall" + tag);
        expect_layouts_agree(
            routing::reverse_broadcast_for_reduce(
                routing::make_tree_broadcast(
                    sbt, BroadcastDiscipline::port_oriented, 3,
                    sim::PortModel::one_port_full_duplex),
                0),
            DataMode::combine, "reduce" + tag);
    }
}

// ------------------------------------------------ residency regression ---

TEST(RtPlanFootprint, ItemizedTotalsAndTrimmedCapacity) {
    const Plan plan = compile_plan(
        routing::make_msbt_broadcast(4, 0, 8,
                                     sim::PortModel::one_port_full_duplex),
        DataMode::move, 16, 3);
    const PlanFootprint f = plan.footprint();
    EXPECT_EQ(f.total(), f.actions + f.dep_graph + f.buckets + f.slots +
                             f.channels + f.arena);
    EXPECT_EQ(f.total(), plan.resident_bytes());
    // The SoA streams dominate `actions`: four u32 words per action.
    EXPECT_GE(f.actions, plan.action_count() * 16u);
    // The arena is the padded canonical blocks and nothing else.
    EXPECT_EQ(f.arena, plan.arena.capacity() * sizeof(double));
    EXPECT_GE(plan.arena.size(),
              std::size_t{plan.packet_count} * plan.arena_stride);
}

/// Regression pins for the compact layout's resident footprint: per
/// family, at every n in 3..8, the compiled plan (workers=2, block 4,
/// arena excluded — block size is a runtime choice, not an encoding
/// property) must fit `bytes_per_hop` bytes per lowered hop plus a fixed
/// allowance. The pins are ~15% above the measured encoding so a field
/// widening or an accidental AoS mirror in the compact path fails loudly.
struct FootprintPin {
    const char* family;
    Schedule (*make)(dim_t n);
    std::uint64_t bytes_per_hop;
};

TEST(RtPlanFootprint, CompactBytesStayPinnedPerFamily) {
    static constexpr FootprintPin kPins[] = {
        {"sbt_broadcast",
         [](dim_t n) {
             return routing::make_tree_broadcast(
                 trees::build_sbt(n, 0),
                 routing::BroadcastDiscipline::port_oriented, 4,
                 sim::PortModel::one_port_full_duplex);
         },
         96},
        {"msbt_broadcast",
         [](dim_t n) {
             return routing::make_msbt_broadcast(
                 n, 0, static_cast<packet_t>(n) * 2,
                 sim::PortModel::one_port_full_duplex);
         },
         96},
        {"sbt_scatter",
         [](dim_t n) {
             return routing::make_tree_scatter(
                 trees::build_sbt(n, 0), routing::ScatterPolicy::descending,
                 2, sim::PortModel::one_port_full_duplex);
         },
         96},
        {"bst_scatter",
         [](dim_t n) {
             return routing::make_tree_scatter(
                 trees::build_bst(n, 0), routing::ScatterPolicy::cyclic, 2,
                 sim::PortModel::one_port_full_duplex);
         },
         96},
        {"allgather",
         [](dim_t n) { return routing::make_allgather_schedule(n); }, 76},
        {"alltoall",
         [](dim_t n) { return routing::make_alltoall_schedule(n, 1); }, 76},
    };
    for (const FootprintPin& pin : kPins) {
        for (dim_t n = 3; n <= 8; ++n) {
            SCOPED_TRACE(std::string(pin.family) +
                         " n=" + std::to_string(n));
            const Schedule schedule = pin.make(n);
            const Plan plan = compile_plan(schedule, DataMode::move, 4, 2,
                                           8, PlanLayout::compact);
            const PlanFootprint f = plan.footprint();
            const std::uint64_t encoding = f.total() - f.arena;
            const std::uint64_t hops = plan.lowered_count();
            // Fixed allowance: cycle/bucket CSR headers, per-node port
            // bitmaps, per-channel words, slot tables.
            const std::uint64_t fixed =
                4096 + (std::uint64_t{1} << n) * 8 + plan.channel_count * 4 +
                plan.total_slots * 24;
            EXPECT_LE(encoding, fixed + hops * pin.bytes_per_hop)
                << "hops=" << hops << " encoding=" << encoding;
        }
    }
}

TEST(RtPlanFootprint, CompactShrinksSbtBroadcastActionEncoding) {
    // At n = 8 the compact sbt_broadcast action + bucket encoding is at
    // least 3x smaller than the wide reference encoding (32 + 8 bytes per
    // hop against the reference's 132). The ISSUE's >= 4x bar is an
    // *entry*-level number — it additionally drops the per-entry oracle
    // image — and is measured by bench_svc's footprint sweep.
    const Schedule schedule = routing::make_tree_broadcast(
        trees::build_sbt(8, 0), routing::BroadcastDiscipline::port_oriented,
        4, sim::PortModel::one_port_full_duplex);
    const Plan compact =
        compile_plan(schedule, DataMode::move, 4, 2, 8, PlanLayout::compact);
    const Plan wide =
        compile_plan(schedule, DataMode::move, 4, 2, 8, PlanLayout::wide);
    const PlanFootprint fc = compact.footprint();
    const PlanFootprint fw = wide.footprint();
    EXPECT_GE(fw.actions + fw.buckets, (fc.actions + fc.buckets) * 3)
        << "wide=" << fw.actions + fw.buckets
        << " compact=" << fc.actions + fc.buckets;
    EXPECT_LT(compact.resident_bytes(), wide.resident_bytes());
}

} // namespace
} // namespace hcube::rt
