// Tests for the schedule -> execution-plan compiler: slot assignment,
// channel numbering, CSR bucketing, and the feasibility checks it shares
// with the cycle executor (availability, duplicate delivery, link
// capacity).
#include "rt/plan.hpp"

#include "common/check.hpp"
#include "routing/broadcast.hpp"
#include "routing/schedule_export.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

namespace hcube::rt {
namespace {

using sim::Schedule;
using sim::ScheduledSend;

Schedule two_hop_chain() {
    // 0 -> 1 in cycle 0, 1 -> 3 in cycle 1 on a 2-cube.
    Schedule s;
    s.n = 2;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 0, 1, 0}, {1, 1, 3, 0}};
    return s;
}

TEST(RtPlan, LowersChainIntoSlotsChannelsAndBuckets) {
    const Plan plan = compile_plan(two_hop_chain(), DataMode::move, 4, 1);
    EXPECT_EQ(plan.cycles, 2u);
    EXPECT_EQ(plan.channel_count, 2u);
    EXPECT_EQ(plan.total_slots, 3u); // held by 0, 1 and 3
    EXPECT_EQ(plan.sends.size(), 2u);
    EXPECT_EQ(plan.recvs.size(), 2u);
    EXPECT_EQ(plan.seeded_slots.size(), 1u); // the initial holder
    EXPECT_NE(plan.slot_of(0, 0), Plan::kNoSlot);
    EXPECT_NE(plan.slot_of(1, 0), Plan::kNoSlot);
    EXPECT_NE(plan.slot_of(3, 0), Plan::kNoSlot);
    EXPECT_EQ(plan.slot_of(2, 0), Plan::kNoSlot);
}

TEST(RtPlan, OwnerPartitionIsBalancedAndContiguous) {
    Plan plan;
    plan.n = 4;
    plan.workers = 3;
    std::uint32_t last = 0;
    std::uint32_t counts[3] = {0, 0, 0};
    for (node_t i = 0; i < 16; ++i) {
        const std::uint32_t owner = plan.owner_of(i);
        ASSERT_LT(owner, 3u);
        ASSERT_GE(owner, last); // contiguous, non-decreasing
        last = owner;
        ++counts[owner];
    }
    for (const std::uint32_t c : counts) {
        EXPECT_GE(c, 5u);
        EXPECT_LE(c, 6u);
    }
}

TEST(RtPlan, RejectsForwardingBeforeArrival) {
    Schedule s = two_hop_chain();
    s.sends[1].cycle = 0; // forwards in the cycle it is still in flight
    EXPECT_THROW((void)compile_plan(s, DataMode::move, 4, 1), check_error);
}

TEST(RtPlan, RejectsDuplicateDeliveryInMoveMode) {
    Schedule s;
    s.n = 2;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 0, 1, 0}, {1, 0, 1, 0}};
    EXPECT_THROW((void)compile_plan(s, DataMode::move, 4, 1), check_error);
}

TEST(RtPlan, RejectsTwoPacketsOnOneLinkInOneCycle) {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {0, 0};
    s.sends = {{0, 0, 1, 0}, {0, 0, 1, 1}};
    EXPECT_THROW((void)compile_plan(s, DataMode::move, 4, 1), check_error);
}

TEST(RtPlan, RejectsNonNeighborSends) {
    Schedule s;
    s.n = 2;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 0, 3, 0}};
    EXPECT_THROW((void)compile_plan(s, DataMode::move, 4, 1), check_error);
}

TEST(RtPlan, CombineModeAcceptsDuplicateArrivalsAndSeedsEverySlot) {
    // Reversed broadcast: the root receives packet p once per child, and
    // every node's slot starts as its own contribution.
    const auto tree = trees::build_sbt(3, 0);
    const sim::Schedule forward = routing::make_tree_broadcast(
        tree, routing::BroadcastDiscipline::port_oriented, 2,
        sim::PortModel::one_port_full_duplex);
    const sim::Schedule reduction =
        routing::reverse_broadcast_for_reduce(forward, 0);
    const Plan plan = compile_plan(reduction, DataMode::combine, 4, 2);
    EXPECT_EQ(plan.mode, DataMode::combine);
    EXPECT_EQ(plan.seeded_slots.size(), plan.total_slots);
    // 8 nodes x 2 packets, every node touches every packet.
    EXPECT_EQ(plan.total_slots, 16u);
    // Cycle count is preserved by time reversal.
    const auto stats = sim::execute_schedule(
        forward, sim::PortModel::one_port_full_duplex);
    EXPECT_EQ(plan.cycles, stats.makespan);
}

TEST(RtPlan, BucketsPartitionEverySendByCycleAndOwner) {
    const sim::Schedule schedule = routing::make_msbt_broadcast(
        4, 0, 8, sim::PortModel::one_port_full_duplex);
    const std::uint32_t workers = 3;
    const Plan plan =
        compile_plan(schedule, DataMode::move, 2, workers);
    ASSERT_EQ(plan.send_begin.size(),
              std::size_t{plan.cycles} * workers + 1);
    EXPECT_EQ(plan.send_begin.back(), schedule.sends.size());
    EXPECT_EQ(plan.recv_begin.back(), schedule.sends.size());
    // Every action sits in the bucket of its cycle and its node's owner.
    for (std::uint32_t c = 0; c < plan.cycles; ++c) {
        for (std::uint32_t w = 0; w < workers; ++w) {
            const std::size_t b = std::size_t{c} * workers + w;
            for (std::uint64_t i = plan.send_begin[b];
                 i < plan.send_begin[b + 1]; ++i) {
                EXPECT_EQ(plan.owner_of(plan.sends[i].node), w);
            }
            for (std::uint64_t i = plan.recv_begin[b];
                 i < plan.recv_begin[b + 1]; ++i) {
                EXPECT_EQ(plan.owner_of(plan.recvs[i].node), w);
            }
        }
    }
}

TEST(RtPlan, DepGraphChainHasExactEdges) {
    // Two-hop chain, one worker: action ids are sends {0, 1} then recvs
    // {2, 3} in lowered (cycle-sorted) order. Expected edges: data
    // 0 -> 2 and 1 -> 3, availability 2 -> 1 (the forward reads the slot
    // the first receive produced). The seeded first send depends on
    // nothing.
    const Plan plan = compile_plan(two_hop_chain(), DataMode::move, 4, 1);
    ASSERT_EQ(plan.action_count(), 4u);
    EXPECT_TRUE(plan.is_send_action(0));
    EXPECT_TRUE(plan.is_send_action(1));
    EXPECT_FALSE(plan.is_send_action(2));
    EXPECT_FALSE(plan.is_send_action(3));

    const std::vector<std::uint32_t> expected_deps = {0, 1, 1, 1};
    EXPECT_EQ(plan.dep_count, expected_deps);

    const auto successors = [&plan](std::uint32_t id) {
        return std::vector<std::uint32_t>(
            plan.succ.begin() + plan.succ_begin[id],
            plan.succ.begin() + plan.succ_begin[id + 1]);
    };
    EXPECT_EQ(successors(0), std::vector<std::uint32_t>{2});
    EXPECT_EQ(successors(1), std::vector<std::uint32_t>{3});
    EXPECT_EQ(successors(2), std::vector<std::uint32_t>{1});
    EXPECT_EQ(successors(3), std::vector<std::uint32_t>{});
}

TEST(RtPlan, CapacityEdgesThrottleChannelReuseToRingDepth) {
    // Four sends down one link, ring depth 2: the k-th send must wait for
    // the (k-2)-th receive (capacity edge) on top of the ring-order edge
    // from the (k-1)-th send, so the channel can never hold more than two
    // in-flight blocks no matter how threads interleave.
    Schedule s;
    s.n = 1;
    s.packet_count = 4;
    s.initial_holder = {0, 0, 0, 0};
    s.sends = {{0, 0, 1, 0}, {1, 0, 1, 1}, {2, 0, 1, 2}, {3, 0, 1, 3}};
    const Plan plan =
        compile_plan(s, DataMode::move, 4, 1, /*async_depth=*/2);
    EXPECT_EQ(plan.async_depth, 2u);
    // Sends: seed, +ring, +ring+capacity, +ring+capacity.
    // Recvs: +data, then +data+ring.
    const std::vector<std::uint32_t> expected_deps = {0, 1, 2, 2,
                                                      1, 2, 2, 2};
    EXPECT_EQ(plan.dep_count, expected_deps);
}

TEST(RtPlan, CombineSameCycleExchangeOrdersSendBeforeAccumulation) {
    // Pairwise exchange (one recursive-doubling allreduce step): node 1
    // sends its partial to node 0 and node 0 sends its partial to node 1
    // in the same cycle. Listed 1 -> 0 first, node 0's receive lowers
    // *before* its send, so only a send-side edge can order the pair: the
    // send must read slot (0, p)'s pre-accumulation value, matching the
    // barrier oracle's sends-before-receives rule within a cycle.
    Schedule s;
    s.n = 1;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 1, 0, 0}, {0, 0, 1, 0}};
    const Plan plan = compile_plan(s, DataMode::combine, 4, 1);
    ASSERT_EQ(plan.action_count(), 4u); // sends {0, 1}, recvs {2, 3}

    // Data edges 0 -> 2 and 1 -> 3; ordering edges 1 -> 2 (send before
    // the accumulation into its source slot) and 0 -> 3 (likewise, caught
    // on the receive side because there the send lowered first).
    const std::vector<std::uint32_t> expected_deps = {0, 0, 2, 2};
    EXPECT_EQ(plan.dep_count, expected_deps);
    const auto successors = [&plan](std::uint32_t id) {
        return std::vector<std::uint32_t>(
            plan.succ.begin() + plan.succ_begin[id],
            plan.succ.begin() + plan.succ_begin[id + 1]);
    };
    EXPECT_EQ(successors(0), (std::vector<std::uint32_t>{2, 3}));
    EXPECT_EQ(successors(1), (std::vector<std::uint32_t>{2, 3}));
}

TEST(RtPlan, EveryDependencyEdgePointsForward) {
    // The DAG argument from docs/RUNTIME.md, checked mechanically: every
    // edge's head sorts strictly after its tail in (cycle, sends-before-
    // recvs) order, so a feasible schedule can never compile into a
    // cyclic (deadlocking) dependency graph. Compiled at workers=1 so the
    // (cycle, worker) buckets recover each action's cycle.
    const auto check = [](const Plan& plan) {
        const auto sends =
            static_cast<std::uint32_t>(plan.flat_sends.size());
        const auto key = [&plan,
                          sends](std::uint32_t id) -> std::uint64_t {
            const bool recv = id >= sends;
            const auto& begin = recv ? plan.recv_begin : plan.send_begin;
            const std::uint64_t index = recv ? id - sends : id;
            std::uint32_t cycle = 0;
            while (begin[cycle + 1] <= index) {
                ++cycle;
            }
            return std::uint64_t{cycle} * 2 + (recv ? 1 : 0);
        };
        for (std::uint32_t id = 0; id < plan.action_count(); ++id) {
            for (std::uint32_t e = plan.succ_begin[id];
                 e < plan.succ_begin[id + 1]; ++e) {
                ASSERT_LT(key(id), key(plan.succ[e]))
                    << "edge " << id << " -> " << plan.succ[e]
                    << " does not point forward";
            }
        }
    };
    check(compile_plan(routing::make_msbt_broadcast(
                           4, 0, 8, sim::PortModel::one_port_full_duplex),
                       DataMode::move, 2, 1));
    const sim::Schedule forward = routing::make_tree_broadcast(
        trees::build_sbt(4, 0), routing::BroadcastDiscipline::port_oriented,
        3, sim::PortModel::one_port_full_duplex);
    check(compile_plan(routing::reverse_broadcast_for_reduce(forward, 0),
                       DataMode::combine, 2, 1));
    // Recursive-doubling allreduce: every node both sends and receives the
    // same slot in every cycle, so the send-before-accumulation edges
    // (which run send -> receive *within* a cycle) appear everywhere.
    Schedule allreduce;
    allreduce.n = 3;
    allreduce.packet_count = 1;
    allreduce.initial_holder = {0};
    for (std::uint32_t d = 0; d < 3; ++d) {
        for (node_t v = 0; v < 8; ++v) {
            allreduce.sends.push_back(
                {d, v, static_cast<node_t>(v ^ (node_t{1} << d)), 0});
        }
    }
    check(compile_plan(allreduce, DataMode::combine, 2, 1));
}

} // namespace
} // namespace hcube::rt
