// Tests for the Hamiltonian-path spanning trees (paper §3.4).
#include "trees/hp.hpp"

#include "hc/bits.hpp"
#include "trees/spanning_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hcube::trees {
namespace {

struct HpCase {
    dim_t n;
    node_t source;
    HpVariant variant;
};

class HpSweep : public ::testing::TestWithParam<HpCase> {};

TEST_P(HpSweep, IsAValidSpanningTree) {
    const auto [n, s, variant] = GetParam();
    const SpanningTree tree = build_hamiltonian_path(n, s, variant);
    EXPECT_NO_THROW(validate_tree(tree));
    EXPECT_EQ(tree.root, s);
}

TEST_P(HpSweep, EveryNodeHasAtMostOneChildExceptCenterRoot) {
    const auto [n, s, variant] = GetParam();
    const SpanningTree tree = build_hamiltonian_path(n, s, variant);
    for (node_t i = 0; i < tree.node_count(); ++i) {
        const std::size_t expected_max =
            (i == s && variant == HpVariant::source_at_center) ? 2 : 1;
        EXPECT_LE(tree.children[i].size(), expected_max) << "node " << i;
    }
}

TEST_P(HpSweep, HeightMatchesVariant) {
    const auto [n, s, variant] = GetParam();
    const SpanningTree tree = build_hamiltonian_path(n, s, variant);
    const node_t N = tree.node_count();
    if (variant == HpVariant::source_at_end) {
        EXPECT_EQ(static_cast<node_t>(tree.height), N - 1);
    } else {
        // Arms of N/2 and N/2 - 1 edges.
        EXPECT_EQ(static_cast<node_t>(tree.height), N / 2);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, HpSweep,
    ::testing::Values(HpCase{2, 0, HpVariant::source_at_end},
                      HpCase{3, 5, HpVariant::source_at_end},
                      HpCase{5, 0, HpVariant::source_at_end},
                      HpCase{7, 0b1010101, HpVariant::source_at_end},
                      HpCase{2, 3, HpVariant::source_at_center},
                      HpCase{4, 9, HpVariant::source_at_center},
                      HpCase{6, 0, HpVariant::source_at_center}),
    [](const auto& param_info) {
        return "n" + std::to_string(param_info.param.n) + "_s" +
               std::to_string(param_info.param.source) +
               (param_info.param.variant == HpVariant::source_at_end ? "_end"
                                                               : "_center");
    });

} // namespace
} // namespace hcube::trees
