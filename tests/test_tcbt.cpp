// Tests for the Two-rooted Complete Binary Tree embedding (paper §3.4).
#include "trees/tcbt.hpp"

#include "hc/bits.hpp"
#include "trees/spanning_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <map>

namespace hcube::trees {
namespace {

class TcbtSweep : public ::testing::TestWithParam<dim_t> {};

TEST_P(TcbtSweep, IsAValidSpanningTree) {
    const dim_t n = GetParam();
    const SpanningTree tree = build_tcbt(n, 0);
    EXPECT_NO_THROW(validate_tree(tree)); // includes dilation-1 everywhere
}

TEST_P(TcbtSweep, HasDoubleRootedCompleteBinaryShape) {
    const dim_t n = GetParam();
    const SpanningTree tree = build_tcbt(n, 0);
    // Primary root: secondary root + (for n >= 2) one subtree root.
    const auto& root_kids = tree.children[0];
    ASSERT_EQ(root_kids.size(), n >= 2 ? 2u : 1u);
    const node_t secondary = root_kids[0];
    ASSERT_EQ(tree.children[secondary].size(), n >= 2 ? 1u : 0u);

    // Every other internal node has exactly two children; leaves sit at
    // depths n-1 (primary side) and n (secondary side).
    for (node_t i = 0; i < tree.node_count(); ++i) {
        if (i == 0 || i == secondary) {
            continue;
        }
        const auto kids = tree.children[i].size();
        if (kids != 0) {
            EXPECT_EQ(kids, 2u) << "node " << i;
        } else {
            const bool through_secondary = tree.subtree[i] ==
                                           tree.subtree[secondary];
            EXPECT_EQ(tree.level[i], through_secondary ? n : n - 1)
                << "leaf " << i;
        }
    }
    EXPECT_EQ(tree.height, n);
}

TEST_P(TcbtSweep, DeterministicForFixedSeed) {
    const dim_t n = GetParam();
    const SpanningTree a = build_tcbt(n, 0, 7);
    const SpanningTree b = build_tcbt(n, 0, 7);
    EXPECT_EQ(a.parent, b.parent);
}

TEST_P(TcbtSweep, TranslatesToAnySource) {
    const dim_t n = GetParam();
    const node_t s = (node_t{1} << n) - 1;
    const SpanningTree tree = build_tcbt(n, s);
    EXPECT_NO_THROW(validate_tree(tree));
    EXPECT_EQ(tree.root, s);
}

INSTANTIATE_TEST_SUITE_P(Dimensions, TcbtSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto& param_info) {
                             return "n" + std::to_string(param_info.param);
                         });

TEST(Tcbt, ShapeInfo) {
    EXPECT_EQ(tcbt_shape(6).height, 6);
    EXPECT_EQ(tcbt_shape(6).nodes, 64u);
}

TEST(Tcbt, LevelPopulationMatchesDrcb) {
    // DRCB level sizes: 1, 2, 2, 4, 8, ..., i.e. level 0 = 1 (primary root),
    // level l >= 1 holds 2^(l-1) + (l <= n-1 ? 2^(l-1) : 0) / ... easier:
    // count directly from the abstract shape: level l has
    //   l == 0: 1;  1 <= l <= n-1: 2^(l-1) + 2^(l-1) = 2^l... except the
    // secondary side is one level deeper. Just verify totals per level are
    // a valid CBT split: level counts sum to 2^n and double until the end.
    const dim_t n = 6;
    const SpanningTree tree = build_tcbt(n, 0);
    std::map<dim_t, std::uint64_t> per_level;
    for (node_t i = 0; i < tree.node_count(); ++i) {
        ++per_level[tree.level[i]];
    }
    EXPECT_EQ(per_level[0], 1u); // primary root
    // Level 1: secondary root + primary subtree root.
    EXPECT_EQ(per_level[1], 2u);
    // Deepest level: the secondary side's 2^(n-2) leaves.
    EXPECT_EQ(per_level[n], std::uint64_t{1} << (n - 2));
    std::uint64_t total = 0;
    for (const auto& [level, count] : per_level) {
        total += count;
    }
    EXPECT_EQ(total, tree.node_count());
}

} // namespace
} // namespace hcube::trees
