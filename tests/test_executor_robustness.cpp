// Robustness of the cycle executor: randomized mutations of a known-valid
// schedule must either be rejected or remain semantically valid — the
// executor is the proof system for every lower-bound claim, so its checks
// must actually fire.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "routing/broadcast.hpp"
#include "hc/bits.hpp"
#include "sim/cycle.hpp"

#include <gtest/gtest.h>

namespace hcube::sim {
namespace {

Schedule base_schedule() {
    // MSBT full-duplex broadcast: dense, every node busy — a good mutation
    // target.
    return routing::msbt_broadcast(4, 0, 2,
                                   PortModel::one_port_full_duplex);
}

TEST(ExecutorRobustness, BaseScheduleIsValid) {
    EXPECT_NO_THROW((void)execute_schedule(base_schedule(),
                                           PortModel::one_port_full_duplex));
}

TEST(ExecutorRobustness, MovingASendEarlierBreaksAvailability) {
    // Any non-root-adjacent send moved to cycle 0 forwards a packet its
    // sender cannot hold yet.
    const Schedule original = base_schedule();
    std::size_t mutated = 0;
    for (std::size_t idx = 0;
         idx < original.sends.size() && mutated < 10; ++idx) {
        if (original.sends[idx].from == 0 || original.sends[idx].cycle == 0) {
            continue;
        }
        Schedule copy = original;
        copy.sends[idx].cycle = 0;
        EXPECT_THROW(
            (void)execute_schedule(copy, PortModel::one_port_full_duplex),
            check_error);
        ++mutated;
    }
    EXPECT_EQ(mutated, 10u);
}

TEST(ExecutorRobustness, RedirectingASendIsCaught) {
    SplitMix64 rng(5);
    const Schedule original = base_schedule();
    int caught = 0;
    for (int trial = 0; trial < 50; ++trial) {
        Schedule copy = original;
        auto& send =
            copy.sends[static_cast<std::size_t>(rng.next_below(
                copy.sends.size()))];
        // Retarget to another neighbor of the sender.
        const auto d = static_cast<hc::dim_t>(rng.next_below(4));
        const hc::node_t new_to = send.from ^ (hc::node_t{1} << d);
        if (new_to == send.to) {
            continue;
        }
        send.to = new_to;
        try {
            (void)execute_schedule(copy, PortModel::one_port_full_duplex);
        } catch (const check_error&) {
            ++caught;
        }
    }
    // Redirecting a tree edge almost always duplicates a delivery or
    // leaves the old receiver without the packet it later forwards.
    EXPECT_GE(caught, 40);
}

TEST(ExecutorRobustness, DuplicatingASendIsAlwaysCaught) {
    SplitMix64 rng(9);
    const Schedule original = base_schedule();
    for (int trial = 0; trial < 25; ++trial) {
        Schedule copy = original;
        const auto& victim =
            copy.sends[static_cast<std::size_t>(rng.next_below(
                copy.sends.size()))];
        // Same packet delivered a second time, later, from a node that has
        // it (the original receiver relays it straight back).
        copy.sends.push_back({victim.cycle + 1, victim.to, victim.from,
                              victim.packet});
        EXPECT_THROW((void)execute_schedule(
                         copy, PortModel::one_port_full_duplex),
                     check_error)
            << "trial " << trial;
    }
}

TEST(ExecutorRobustness, TighteningTheModelIsCaught) {
    // The full-duplex MSBT schedule has bidirectional cycles: it must fail
    // under half duplex as-is.
    EXPECT_THROW((void)execute_schedule(base_schedule(),
                                        PortModel::one_port_half_duplex),
                 check_error);
    // But is fine under the looser all-port model.
    EXPECT_NO_THROW(
        (void)execute_schedule(base_schedule(), PortModel::all_port));
}

TEST(ExecutorRobustness, PacketCountMismatchIsCaught) {
    Schedule schedule = base_schedule();
    schedule.initial_holder.pop_back();
    EXPECT_THROW((void)execute_schedule(schedule,
                                        PortModel::one_port_full_duplex),
                 check_error);
}

} // namespace
} // namespace hcube::sim
