// Tests for the flat execution engine at scale: sparse vs dense delivery
// tracking, the DeliveryMap hash itself, the half-duplex stretcher's error
// paths, and an n = 16 smoke test pinning the MSBT makespan formulas
// P + n (full duplex) and 2P + n - 1 (stretched half duplex) from Table 3.
#include "routing/broadcast.hpp"
#include "routing/scatter.hpp"
#include "sim/cycle.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include "common/check.hpp"

#include <gtest/gtest.h>

namespace hcube::sim {
namespace {

using routing::msbt_broadcast;
using routing::scatter_one_port;

/// Every (node, packet) cell of two executions must agree, whatever the
/// backing representation.
void expect_same_deliveries(const CycleStats& a, const CycleStats& b,
                            node_t count, packet_t packets) {
    ASSERT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.total_sends, b.total_sends);
    for (node_t i = 0; i < count; ++i) {
        for (packet_t p = 0; p < packets; ++p) {
            ASSERT_EQ(a.delivery_cycle.get(i, p), b.delivery_cycle.get(i, p))
                << "node " << i << ", packet " << p;
        }
    }
}

TEST(DeliveryTrackingModes, SparseMatchesDenseOnBroadcast) {
    const Schedule schedule =
        msbt_broadcast(5, 0, 3, PortModel::one_port_full_duplex);
    const auto dense = execute_schedule(
        schedule, PortModel::one_port_full_duplex, DeliveryTracking::dense);
    const auto sparse = execute_schedule(
        schedule, PortModel::one_port_full_duplex, DeliveryTracking::sparse);
    EXPECT_FALSE(dense.delivery_cycle.is_sparse());
    EXPECT_TRUE(sparse.delivery_cycle.is_sparse());
    expect_same_deliveries(dense, sparse, node_t{1} << 5,
                           schedule.packet_count);
}

TEST(DeliveryTrackingModes, SparseMatchesDenseOnScatter) {
    const trees::SpanningTree tree = trees::build_sbt(7, 0);
    const Schedule schedule = scatter_one_port(
        tree, routing::descending_dest_order(tree), 2);
    const auto dense = execute_schedule(
        schedule, PortModel::one_port_full_duplex, DeliveryTracking::dense);
    const auto sparse = execute_schedule(
        schedule, PortModel::one_port_full_duplex, DeliveryTracking::sparse);
    expect_same_deliveries(dense, sparse, node_t{1} << 7,
                           schedule.packet_count);
}

TEST(DeliveryTrackingModes, AutomaticPicksSparseForLargeScatter) {
    // n = 12 scatter: 4096 x 4095 = 16.8M dense cells, but only ~25k sends —
    // the automatic heuristic must choose the hash.
    const trees::SpanningTree tree = trees::build_sbt(12, 0);
    const Schedule schedule = scatter_one_port(
        tree, routing::descending_dest_order(tree), 1);
    const auto stats =
        execute_schedule(schedule, PortModel::one_port_full_duplex);
    EXPECT_TRUE(stats.delivery_cycle.is_sparse());
    // ...and still answers point queries: the farthest node holds its packet.
    const node_t all_ones = (node_t{1} << 12) - 1;
    EXPECT_TRUE(stats.holds(all_ones,
                            routing::scatter_packet_id(all_ones, 0, 1, 0)));
    EXPECT_FALSE(stats.holds(1, routing::scatter_packet_id(2, 0, 1, 0)));
}

TEST(DeliveryTrackingModes, AutomaticStaysDenseForBroadcast) {
    // Broadcasts deliver ~every cell, so dense is the right call even when
    // the matrix is biggish.
    const Schedule schedule =
        msbt_broadcast(9, 0, 2, PortModel::one_port_full_duplex);
    const auto stats =
        execute_schedule(schedule, PortModel::one_port_full_duplex);
    EXPECT_FALSE(stats.delivery_cycle.is_sparse());
}

TEST(DeliveryMapHash, GrowsFromTinyInitialCapacity) {
    // Seeding with expected_entries = 1 forces several rehashes.
    DeliveryMap map = DeliveryMap::sparse(1024, 4096, 1);
    for (node_t i = 0; i < 1024; ++i) {
        for (packet_t p = 0; p < 8; ++p) {
            map.set(i, p * 512 + i % 512, i + p);
        }
    }
    EXPECT_EQ(map.entry_count(), std::size_t{1024} * 8);
    for (node_t i = 0; i < 1024; ++i) {
        for (packet_t p = 0; p < 8; ++p) {
            ASSERT_EQ(map.get(i, p * 512 + i % 512), i + p);
        }
        // Written packets all satisfy packet % 512 == i % 512; probe one
        // with the wrong residue.
        ASSERT_EQ(map.get(i, (i + 1) % 512), DeliveryMap::kNever);
    }
}

TEST(StretchToHalfDuplex, RejectsOddTransferCycle) {
    // A directed 3-cycle of transfers in one cycle: every node both sends
    // and receives, and the transfer graph 0-1-2 is an odd cycle, so no
    // 2-colouring into two sub-cycles exists. (The stretcher checks port
    // feasibility, not cube adjacency, so the 1-2 edge is fine as input.)
    Schedule s;
    s.n = 2;
    s.packet_count = 3;
    s.initial_holder = {0, 1, 2};
    s.sends = {{0, 0, 1, 0}, {0, 1, 2, 1}, {0, 2, 0, 2}};
    EXPECT_THROW((void)stretch_to_half_duplex(s), check_error);
}

TEST(StretchToHalfDuplex, RejectsDoubleSendInput) {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {0, 0};
    s.sends = {{0, 0, 1, 0}, {0, 0, 2, 1}}; // node 0 sends twice in cycle 0
    EXPECT_THROW((void)stretch_to_half_duplex(s), check_error);
}

TEST(StretchToHalfDuplex, RejectsDoubleReceiveInput) {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {1, 2};
    s.sends = {{0, 1, 3, 0}, {0, 2, 3, 1}}; // node 3 receives twice
    EXPECT_THROW((void)stretch_to_half_duplex(s), check_error);
}

TEST(ExecutorScale, MsbtMakespansAtN16MatchTable3) {
    // P = n * packets_per_subtree; full duplex finishes in P + n cycles and
    // the stretched half-duplex schedule in 2P + n - 1 (paper §3.3.2).
    constexpr dim_t n = 16;
    constexpr packet_t pps = 3;
    constexpr std::uint32_t P = static_cast<std::uint32_t>(n) * pps;

    const Schedule full =
        msbt_broadcast(n, 0, pps, PortModel::one_port_full_duplex);
    const auto full_stats =
        execute_schedule(full, PortModel::one_port_full_duplex);
    EXPECT_EQ(full_stats.makespan, P + static_cast<std::uint32_t>(n));

    const Schedule half =
        msbt_broadcast(n, 0, pps, PortModel::one_port_half_duplex);
    const auto half_stats =
        execute_schedule(half, PortModel::one_port_half_duplex);
    EXPECT_EQ(half_stats.makespan,
              2 * P + static_cast<std::uint32_t>(n) - 1);

    // Broadcast really completed: every node holds every packet.
    const node_t count = node_t{1} << n;
    EXPECT_EQ(full_stats.total_sends,
              std::uint64_t{count - 1} * P);
    for (const node_t i : {node_t{1}, count / 2, count - 1}) {
        for (const packet_t p : {packet_t{0}, P - 1}) {
            EXPECT_TRUE(full_stats.holds(i, p));
            EXPECT_TRUE(half_stats.holds(i, p));
        }
    }
}

} // namespace
} // namespace hcube::sim
