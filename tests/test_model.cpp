// Tests for the analytic complexity models (model/): Table 1-4 and Table 6
// formulas, internal consistency (B_opt really minimizes T), and agreement
// with the paper's simplified ratio entries.
#include "model/broadcast_model.hpp"
#include "model/personalized_model.hpp"

#include "common/check.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hcube::model {
namespace {

using sim::PortModel;

constexpr PortModel kModels[] = {PortModel::one_port_half_duplex,
                                 PortModel::one_port_full_duplex,
                                 PortModel::all_port};
constexpr Algorithm kBroadcastAlgos[] = {Algorithm::hp, Algorithm::sbt,
                                         Algorithm::tcbt, Algorithm::msbt};

TEST(BroadcastModel, Table1Entries) {
    const dim_t n = 6; // N = 64
    EXPECT_EQ(propagation_delay(Algorithm::hp,
                                PortModel::one_port_half_duplex, n),
              63);
    EXPECT_EQ(propagation_delay(Algorithm::sbt, PortModel::all_port, n), 6);
    EXPECT_EQ(propagation_delay(Algorithm::tcbt,
                                PortModel::one_port_full_duplex, n),
              10);
    EXPECT_EQ(propagation_delay(Algorithm::tcbt, PortModel::all_port, n), 6);
    EXPECT_EQ(propagation_delay(Algorithm::msbt,
                                PortModel::one_port_half_duplex, n),
              17);
    EXPECT_EQ(propagation_delay(Algorithm::msbt,
                                PortModel::one_port_full_duplex, n),
              12);
    EXPECT_EQ(propagation_delay(Algorithm::msbt, PortModel::all_port, n), 7);
}

TEST(BroadcastModel, Table2Entries) {
    const dim_t n = 8;
    EXPECT_DOUBLE_EQ(
        cycles_per_packet(Algorithm::hp, PortModel::one_port_half_duplex, n),
        2.0);
    EXPECT_DOUBLE_EQ(
        cycles_per_packet(Algorithm::hp, PortModel::one_port_full_duplex, n),
        1.0);
    EXPECT_DOUBLE_EQ(
        cycles_per_packet(Algorithm::sbt, PortModel::one_port_half_duplex, n),
        8.0);
    EXPECT_DOUBLE_EQ(cycles_per_packet(Algorithm::sbt, PortModel::all_port, n),
                     1.0);
    EXPECT_DOUBLE_EQ(
        cycles_per_packet(Algorithm::tcbt, PortModel::one_port_half_duplex, n),
        3.0);
    EXPECT_DOUBLE_EQ(
        cycles_per_packet(Algorithm::msbt, PortModel::all_port, n),
        1.0 / 8.0);
}

TEST(BroadcastModel, StepsReduceToDelaysAtOnePacket) {
    // T at the smallest useful message should be within a small constant of
    // the propagation delay. For HP/SBT/TCBT that message is one packet;
    // Table 1's MSBT delays are for broadcasting log N packets (one per
    // subtree), so the MSBT uses M = n·B.
    for (const auto algo : kBroadcastAlgos) {
        for (const auto m : kModels) {
            for (dim_t n = 4; n <= 10; ++n) {
                const double M = (algo == Algorithm::msbt) ? n : 1;
                const double steps = broadcast_steps(algo, m, M, 1, n);
                const double delay =
                    static_cast<double>(propagation_delay(algo, m, n));
                EXPECT_NEAR(steps, delay, 2.0)
                    << to_string(algo) << " " << to_string(m) << " n=" << n;
            }
        }
    }
}

TEST(BroadcastModel, BoptMinimizesTime) {
    const CommParams params = ipsc_params();
    const double M = 61440;
    for (const auto algo : kBroadcastAlgos) {
        for (const auto m : kModels) {
            for (dim_t n = 4; n <= 8; ++n) {
                const double bopt = broadcast_bopt(algo, m, M, n, params);
                ASSERT_GT(bopt, 0.0);
                const double t_opt =
                    broadcast_time(algo, m, M, bopt, n, params);
                // Perturbing B by 2x in either direction must not improve T
                // (the ceil() makes T weakly non-smooth, hence the margin).
                for (const double factor : {0.5, 2.0}) {
                    const double t_other =
                        broadcast_time(algo, m, M, bopt * factor, n, params);
                    EXPECT_GE(t_other, 0.95 * t_opt)
                        << to_string(algo) << " " << to_string(m)
                        << " n=" << n << " factor=" << factor;
                }
            }
        }
    }
}

TEST(BroadcastModel, TminIsTimeAtBoptUpToCeiling) {
    const CommParams params = ipsc_params();
    const double M = 61440;
    for (const auto algo : kBroadcastAlgos) {
        for (const auto m : kModels) {
            const dim_t n = 7;
            const double tmin = broadcast_tmin(algo, m, M, n, params);
            const double at_bopt = broadcast_time(
                algo, m, M, broadcast_bopt(algo, m, M, n, params), n, params);
            // The closed forms drop the ceilings; allow 15%.
            EXPECT_NEAR(at_bopt, tmin, 0.15 * tmin)
                << to_string(algo) << " " << to_string(m);
        }
    }
}

TEST(BroadcastModel, Table4RatiosMatchThePaperEntries) {
    const dim_t n = 10; // log N = 10: asymptotic entries are clean
    const double N = std::ldexp(1.0, n);
    // Row 1: SBT/MSBT, 1 send or recv.
    EXPECT_NEAR(complexity_ratio_vs_msbt(Algorithm::sbt,
                                         PortModel::one_port_half_duplex,
                                         Regime::one_packet, n),
                n / (n + 1.0), 0.15);
    EXPECT_NEAR(complexity_ratio_vs_msbt(Algorithm::sbt,
                                         PortModel::one_port_half_duplex,
                                         Regime::many_packets, n),
                n / 2.0, 0.1);
    // Paper entry "1": the exact formulas give n/(n-1) = 1.11 at n = 10.
    EXPECT_NEAR(complexity_ratio_vs_msbt(Algorithm::sbt,
                                         PortModel::one_port_half_duplex,
                                         Regime::bopt_startup_bound, n),
                1.0, 0.15);
    EXPECT_NEAR(complexity_ratio_vs_msbt(Algorithm::sbt,
                                         PortModel::one_port_half_duplex,
                                         Regime::bopt_transfer_bound, n),
                n / 2.0, 0.1);
    // Row 2: TCBT/MSBT, 1 send or recv.
    EXPECT_NEAR(complexity_ratio_vs_msbt(Algorithm::tcbt,
                                         PortModel::one_port_half_duplex,
                                         Regime::one_packet, n),
                (2.0 * n - 2) / (n + 1), 0.25);
    EXPECT_NEAR(complexity_ratio_vs_msbt(Algorithm::tcbt,
                                         PortModel::one_port_half_duplex,
                                         Regime::many_packets, n),
                1.5, 0.05);
    // Rows 3-4: 1 send and recv.
    EXPECT_NEAR(complexity_ratio_vs_msbt(Algorithm::sbt,
                                         PortModel::one_port_full_duplex,
                                         Regime::many_packets, n),
                static_cast<double>(n), 0.1);
    EXPECT_NEAR(complexity_ratio_vs_msbt(Algorithm::tcbt,
                                         PortModel::one_port_full_duplex,
                                         Regime::many_packets, n),
                2.0, 0.05);
    // Row 5: all ports — SBT/MSBT = log N in the transfer-bound regime.
    EXPECT_NEAR(complexity_ratio_vs_msbt(Algorithm::sbt, PortModel::all_port,
                                         Regime::bopt_transfer_bound, n),
                static_cast<double>(n), 0.1);
    (void)N;
}

TEST(BroadcastModel, RejectsBstRows) {
    EXPECT_THROW((void)propagation_delay(Algorithm::bst,
                                         PortModel::all_port, 5),
                 check_error);
    EXPECT_THROW((void)broadcast_steps(Algorithm::bst, PortModel::all_port,
                                       10, 1, 5),
                 check_error);
}

TEST(PersonalizedModel, Table6RelationsHold) {
    const CommParams params = ipsc_params();
    const double M = 1024;
    for (dim_t n = 4; n <= 10; ++n) {
        const double sbt1 =
            personalized_tmin(Algorithm::sbt, false, M, n, params);
        const double sbt_all =
            personalized_tmin(Algorithm::sbt, true, M, n, params);
        const double bst_all =
            personalized_tmin(Algorithm::bst, true, M, n, params);
        const double tcbt1 =
            personalized_tmin(Algorithm::tcbt, false, M, n, params);
        // All ports buys the SBT a factor 2 in transfer time.
        EXPECT_LT(sbt_all, sbt1);
        // The BST all-port beats the SBT all-port by ≈ (1/2) log N when
        // transfer dominates.
        const CommParams transfer_bound{1e-9, 1.0};
        const double ratio =
            personalized_tmin(Algorithm::sbt, true, M, n, transfer_bound) /
            personalized_tmin(Algorithm::bst, true, M, n, transfer_bound);
        EXPECT_NEAR(ratio, n / 2.0, 0.2);
        // TCBT is never better than SBT at one port.
        EXPECT_GE(tcbt1, sbt1);
        (void)bst_all;
    }
}

TEST(PersonalizedModel, SmallPacketStepsMatchSection42) {
    const dim_t n = 6;
    const double N = 64;
    EXPECT_DOUBLE_EQ(
        personalized_steps_small_packets(Algorithm::sbt, false, 8, 8, n),
        N - 1);
    EXPECT_DOUBLE_EQ(
        personalized_steps_small_packets(Algorithm::bst, false, 8, 8, n),
        N - 1);
    EXPECT_DOUBLE_EQ(
        personalized_steps_small_packets(Algorithm::bst, true, 8, 8, n),
        (N - 1) / n);
    EXPECT_DOUBLE_EQ(
        personalized_steps_small_packets(Algorithm::sbt, true, 8, 8, n),
        N / 2);
    EXPECT_THROW((void)personalized_steps_small_packets(Algorithm::sbt, true,
                                                        8, 16, n),
                 check_error);
}

TEST(BroadcastModel, FitParamsRecoversMachineConstants) {
    const CommParams truth = ipsc_params();
    const double t1 = truth.tau + 128 * truth.tc;
    const double t2 = truth.tau + 1024 * truth.tc;
    const CommParams fit = fit_params(128, t1, 1024, t2);
    EXPECT_NEAR(fit.tau, truth.tau, 1e-12);
    EXPECT_NEAR(fit.tc, truth.tc, 1e-15);
}

TEST(BroadcastModel, FitParamsRejectsDegenerateInput) {
    EXPECT_THROW((void)fit_params(100, 1.0, 100, 2.0), check_error);
    EXPECT_THROW((void)fit_params(100, 2.0, 200, 1.0), check_error);
}

TEST(PersonalizedModel, RejectsNonTable6Rows) {
    EXPECT_THROW(
        (void)personalized_tmin(Algorithm::hp, false, 10, 5, ipsc_params()),
        check_error);
}

} // namespace
} // namespace hcube::model
