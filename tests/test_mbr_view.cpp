// mbr::View — versioned membership: epoch-stamped transitions, per-subcube
// epoch tracking (the surgical-invalidation contract the svc plan cache
// keys on), restriction, fingerprints, and the k-bucket NeighborTable.
#include "mbr/view.hpp"

#include "common/check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace hcube::mbr {
namespace {

TEST(MbrView, FullViewStartsAtEpochZero) {
    const View view(4);
    EXPECT_EQ(view.dimension(), 4);
    EXPECT_EQ(view.epoch(), 0u);
    EXPECT_EQ(view.count(), 16u);
    EXPECT_TRUE(view.full());
    for (node_t v = 0; v < 16; ++v) {
        EXPECT_TRUE(view.contains(v));
        EXPECT_EQ(view.member_rank(v), v);
    }
    for (dim_t m = 0; m <= 4; ++m) {
        EXPECT_EQ(view.epoch_of_subcube(m), 0u);
        EXPECT_TRUE(view.subcube_full(m));
    }
}

TEST(MbrView, OfBuildsExactMemberSet) {
    const std::vector<node_t> members{0, 3, 5, 6};
    const View view = View::of(3, members);
    EXPECT_EQ(view.count(), 4u);
    EXPECT_FALSE(view.full());
    EXPECT_EQ(view.members(), members);
    EXPECT_EQ(view.member_rank(0), 0u);
    EXPECT_EQ(view.member_rank(3), 1u);
    EXPECT_EQ(view.member_rank(6), 3u);
    EXPECT_FALSE(view.contains(1));
    EXPECT_THROW((void)View::of(3, std::vector<node_t>{0, 0}), check_error);
    EXPECT_THROW((void)View::of(3, std::vector<node_t>{8}), check_error);
}

TEST(MbrView, TransitionsAreStrictAndBumpTheEpoch) {
    View view(3);
    EXPECT_THROW(view.join(0), check_error);  // already live
    EXPECT_THROW(view.leave(8), check_error); // out of range
    view.leave(5);
    EXPECT_EQ(view.epoch(), 1u);
    EXPECT_FALSE(view.contains(5));
    EXPECT_THROW(view.leave(5), check_error); // already dead
    view.join(5);
    EXPECT_EQ(view.epoch(), 2u);
    EXPECT_TRUE(view.full());

    View lone = View::of(3, std::vector<node_t>{2});
    EXPECT_THROW(lone.leave(2), check_error); // a view cannot empty
}

TEST(MbrView, SubcubeEpochsTrackOnlyTouchedPrefixes) {
    View view(4);
    view.leave(9); // touches only sub-cubes with 2^m > 9, i.e. m == 4
    EXPECT_EQ(view.epoch(), 1u);
    EXPECT_EQ(view.epoch_of_subcube(4), 1u);
    EXPECT_EQ(view.epoch_of_subcube(3), 0u); // addresses 0..7 untouched
    EXPECT_EQ(view.epoch_of_subcube(0), 0u);

    view.leave(2); // touches every m >= 2
    EXPECT_EQ(view.epoch_of_subcube(4), 2u);
    EXPECT_EQ(view.epoch_of_subcube(3), 2u);
    EXPECT_EQ(view.epoch_of_subcube(2), 2u);
    EXPECT_EQ(view.epoch_of_subcube(1), 0u);
}

TEST(MbrView, RestrictionCommutesWithEpochKeying) {
    View view(4);
    view.leave(9);
    const View sub = view.restricted(3);
    EXPECT_EQ(sub.dimension(), 3);
    EXPECT_TRUE(sub.full()); // the hole is above 2^3
    EXPECT_EQ(sub.epoch(), view.epoch_of_subcube(3));

    view.leave(2);
    const View sub2 = view.restricted(3);
    EXPECT_EQ(sub2.count(), 7u);
    EXPECT_FALSE(sub2.contains(2));
    EXPECT_EQ(sub2.epoch(), view.epoch_of_subcube(3));
}

TEST(MbrView, ApplyValidatesAllBeforeMutating) {
    View view(3);
    Delta bad;
    bad.leaves = {1, 1}; // duplicate leave of the same address
    EXPECT_THROW(view.apply(bad), check_error);
    EXPECT_EQ(view.epoch(), 0u); // untouched
    EXPECT_TRUE(view.full());

    Delta good;
    good.leaves = {1, 6};
    view.apply(good);
    EXPECT_EQ(view.epoch(), 1u); // one bump for the whole batch
    EXPECT_EQ(view.count(), 6u);

    Delta swap;
    swap.joins = {1};
    swap.leaves = {0};
    view.apply(swap);
    EXPECT_EQ(view.epoch(), 2u);
    EXPECT_TRUE(view.contains(1));
    EXPECT_FALSE(view.contains(0));

    view.apply(Delta{}); // empty delta is a no-op, not a bump
    EXPECT_EQ(view.epoch(), 2u);
}

TEST(MbrView, FingerprintNamesTheSetNotTheHistory) {
    View a(3);
    a.leave(5);
    View b(3);
    b.leave(2);
    b.leave(5);
    b.join(2);
    EXPECT_NE(a.epoch(), b.epoch());
    EXPECT_EQ(a.fingerprint(), b.fingerprint()); // same member set
    EXPECT_NE(a.fingerprint(), View(3).fingerprint());
}

TEST(MbrNeighbor, BucketsMirrorSbtSubtreesOnTheFullView) {
    const View view(3);
    const NeighborTable table = NeighborTable::build(view, 0);
    ASSERT_EQ(table.buckets.size(), 3u);
    // Bucket j = members whose relative address has highest bit j — the
    // population of the SBT subtree through port j at root 0.
    EXPECT_EQ(table.buckets[0], (std::vector<node_t>{1}));
    EXPECT_EQ(table.buckets[1], (std::vector<node_t>{2, 3}));
    EXPECT_EQ(table.buckets[2], (std::vector<node_t>{4, 5, 6, 7}));
    EXPECT_EQ(table.contact(2), std::optional<node_t>{4});
}

TEST(MbrNeighbor, CapsBucketsAtKClosest) {
    const View view(4);
    const NeighborTable table = NeighborTable::build(view, 0, 2);
    for (const auto& bucket : table.buckets) {
        EXPECT_LE(bucket.size(), 2u);
    }
    EXPECT_EQ(table.buckets[3], (std::vector<node_t>{8, 9}));
    const std::vector<node_t> near = table.closest(3);
    EXPECT_EQ(near.size(), 3u);
}

TEST(MbrNeighbor, DeadContactsNeverAppear) {
    View view(3);
    view.leave(4);
    const NeighborTable table = NeighborTable::build(view, 0);
    EXPECT_EQ(table.buckets[2], (std::vector<node_t>{5, 6, 7}));
    EXPECT_EQ(table.contact(2), std::optional<node_t>{5});
}

TEST(MbrNeighbor, NearestMemberIsXorClosest) {
    View view(3);
    EXPECT_EQ(nearest_member(view, 6), 6u); // live target is its own nearest
    view.leave(6);
    EXPECT_EQ(nearest_member(view, 6), 7u); // 6^7 == 1, the closest flip
    const std::vector<node_t> close = closest_members(view, 6, 3);
    EXPECT_EQ(close, (std::vector<node_t>{7, 4, 5})); // XOR distances 1,2,3
}

} // namespace
} // namespace hcube::mbr
