// Tests for the Gray-code ring/torus embeddings (hc/embed.hpp).
#include "hc/embed.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hcube::hc {
namespace {

TEST(EmbedRing, IsAHamiltonianCycle) {
    for (dim_t n = 1; n <= 10; ++n) {
        const auto ring = embed_ring(n);
        ASSERT_EQ(ring.size(), std::size_t{1} << n);
        std::set<node_t> seen(ring.begin(), ring.end());
        EXPECT_EQ(seen.size(), ring.size());
        for (std::size_t p = 0; p < ring.size(); ++p) {
            const node_t next = ring[(p + 1) % ring.size()];
            EXPECT_EQ(hamming(ring[p], next), 1)
                << "n=" << n << " position " << p;
        }
    }
}

class TorusSweep
    : public ::testing::TestWithParam<std::pair<dim_t, dim_t>> {};

TEST_P(TorusSweep, IsABijection) {
    const auto [rd, cd] = GetParam();
    const TorusEmbedding torus = embed_torus(rd, cd);
    std::set<node_t> seen;
    for (node_t r = 0; r < torus.rows(); ++r) {
        for (node_t c = 0; c < torus.cols(); ++c) {
            const node_t node = torus.node_at(r, c);
            EXPECT_TRUE(seen.insert(node).second);
            EXPECT_LT(node, node_t{1} << (rd + cd));
            const auto [rr, cc] = torus.coord_of(node);
            EXPECT_EQ(rr, r);
            EXPECT_EQ(cc, c);
        }
    }
    EXPECT_EQ(seen.size(), std::size_t{1} << (rd + cd));
}

TEST_P(TorusSweep, AllFourDirectionsAreDilationOne) {
    const auto [rd, cd] = GetParam();
    const TorusEmbedding torus = embed_torus(rd, cd);
    for (node_t r = 0; r < torus.rows(); ++r) {
        for (node_t c = 0; c < torus.cols(); ++c) {
            const node_t here = torus.node_at(r, c);
            const node_t right = torus.node_at(r, (c + 1) % torus.cols());
            const node_t down = torus.node_at((r + 1) % torus.rows(), c);
            EXPECT_EQ(hamming(here, right), 1)
                << "(" << r << "," << c << ") right";
            EXPECT_EQ(hamming(here, down), 1)
                << "(" << r << "," << c << ") down";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TorusSweep,
                         ::testing::Values(std::pair<dim_t, dim_t>{1, 1},
                                           std::pair<dim_t, dim_t>{2, 2},
                                           std::pair<dim_t, dim_t>{3, 2},
                                           std::pair<dim_t, dim_t>{2, 5},
                                           std::pair<dim_t, dim_t>{4, 4}),
                         [](const auto& param_info) {
                             return std::to_string(param_info.param.first) +
                                    "x" +
                                    std::to_string(param_info.param.second);
                         });

TEST(EmbedTorus, RejectsDegenerateShapes) {
    EXPECT_THROW((void)embed_torus(0, 3), check_error);
    EXPECT_THROW((void)embed_torus(20, 20), check_error);
}

} // namespace
} // namespace hcube::hc
