// The telemetry plane on the wire: METRICS codec round-trips, decoder
// survival on truncated/garbage frames, a live netd scraped over a bare
// METRICS frame (exact counter match against the in-process registry),
// and a multi-rank net::run_job whose per-rank snapshot deltas merge into
// the job-level report.
#include "net/job.hpp"
#include "net/netd.hpp"

#include "model/broadcast_model.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "svc/signature.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

namespace hcube::net {
namespace {

using hc::node_t;

svc::Signature broadcast_sig(dim_t n, node_t root = 0) {
    svc::Signature s;
    s.op = svc::Op::broadcast;
    s.family = svc::Family::sbt;
    s.n = n;
    s.root = root;
    s.packets = 2;
    s.block_elems = 16;
    return s;
}

NetdParams uds_params(const std::string& path) {
    NetdParams p;
    p.service.session.threads = 2;
    p.service.session.comm = model::CommParams{1.0, 1e-6};
    p.endpoint = Endpoint::unix_path(path);
    return p;
}

std::string temp_sock(const char* tag) {
    const char* base = std::getenv("TMPDIR");
    return std::string(base != nullptr ? base : "/tmp") + "/hcobs-" + tag +
           "-" + std::to_string(::getpid()) + ".sock";
}

obs::RegistrySnapshot sample_snapshot() {
    obs::Registry reg;
    reg.counter("a.count").inc(42);
    reg.gauge("b.level").set(-7);
    obs::Histogram& h = reg.histogram("c.lat_ns");
    h.record(3);
    h.record(1'000);
    h.record(123'456'789);
    return reg.snapshot();
}

TEST(ObsWire, MetricsRoundTripIsExact) {
    const obs::RegistrySnapshot snap = sample_snapshot();
    std::vector<std::uint8_t> frame;
    encode_metrics(frame, snap);
    EXPECT_EQ(frame_type(frame), MsgType::metrics);

    obs::RegistrySnapshot back;
    ASSERT_TRUE(decode_metrics(frame, back));
    ASSERT_EQ(back.metrics.size(), snap.metrics.size());
    EXPECT_EQ(back.counter("a.count"), 42u);
    EXPECT_EQ(back.gauge("b.level"), -7);
    const obs::MetricSnapshot* h = back.find("c.lat_ns");
    ASSERT_NE(h, nullptr);
    const obs::MetricSnapshot* ref = snap.find("c.lat_ns");
    EXPECT_EQ(h->hist.count, ref->hist.count);
    EXPECT_EQ(h->hist.sum, ref->hist.sum);
    EXPECT_EQ(h->hist.max, ref->hist.max);
    for (const double p : {0.5, 0.95, 0.99}) {
        EXPECT_EQ(h->hist.percentile(p), ref->hist.percentile(p));
    }
}

TEST(ObsWire, DecoderRejectsTruncationAndGarbage) {
    const obs::RegistrySnapshot snap = sample_snapshot();
    std::vector<std::uint8_t> frame;
    encode_metrics(frame, snap);

    // Every truncation of a valid frame must fail cleanly (the bare
    // 1-byte frame is the scrape *request*, not a snapshot).
    obs::RegistrySnapshot out;
    for (std::size_t len = 1; len < frame.size(); ++len) {
        EXPECT_FALSE(decode_metrics(
            std::span<const std::uint8_t>(frame.data(), len), out))
            << "len=" << len;
    }
    // Wrong type byte.
    std::vector<std::uint8_t> wrong = frame;
    wrong[0] = static_cast<std::uint8_t>(MsgType::report);
    EXPECT_FALSE(decode_metrics(wrong, out));
    // Absurd metric count.
    std::vector<std::uint8_t> bloat = {
        static_cast<std::uint8_t>(MsgType::metrics), 0xff, 0xff, 0xff,
        0xff};
    EXPECT_FALSE(decode_metrics(bloat, out));
    // Histogram bucket index out of range.
    obs::RegistrySnapshot bad_bucket;
    obs::MetricSnapshot m;
    m.name = "h";
    m.kind = obs::Kind::histogram;
    m.hist.count = 1;
    m.hist.counts.assign(1, 1);
    bad_bucket.metrics.push_back(m);
    std::vector<std::uint8_t> hframe;
    encode_metrics(hframe, bad_bucket);
    // Patch the (single) bucket index to an impossible value: it is the
    // u32 right after type + count + name(len-prefixed) + kind + 3 u64s +
    // pair count.
    const std::size_t idx_off = 1 + 4 + (4 + 1) + 1 + 8 * 3 + 4;
    ASSERT_LT(idx_off + 4, hframe.size() + 1);
    hframe[idx_off] = 0xff;
    hframe[idx_off + 1] = 0xff;
    EXPECT_FALSE(decode_metrics(hframe, out));
}

TEST(ObsScrape, NetdScrapeMatchesInProcessRegistry) {
    const std::string path = temp_sock("scrape");
    Netd daemon(4, uds_params(path));
    NetClient client(daemon.endpoint());
    for (int i = 0; i < 3; ++i) {
        const OpResponseMsg r = client.run(broadcast_sig(4));
        ASSERT_EQ(r.status, static_cast<std::uint8_t>(svc::Status::ok));
        ASSERT_TRUE(r.verified);
    }
    daemon.service().drain();

    const obs::RegistrySnapshot scraped = client.scrape();
    const obs::RegistrySnapshot local = obs::registry().snapshot();
    // The daemon runs in this process: the scraped svc.*/rt.* counters
    // must match the in-process registry exactly. (net.frame_* counters
    // move during the scrape exchange itself, so they are compared as
    // presence, not equality.)
    for (const char* name :
         {"svc.submitted", "svc.executed", "svc.failed",
          "svc.plan_cache.hits", "svc.plan_cache.misses", "rt.cycles",
          "rt.checksum_bytes", "rt.plays_barrier"}) {
        EXPECT_EQ(scraped.counter(name), local.counter(name)) << name;
    }
    EXPECT_GE(scraped.counter("svc.executed"), 3u);
    EXPECT_GT(scraped.counter("net.frame_bytes_in"), 0u);
    EXPECT_GT(scraped.counter("net.frame_bytes_out"), 0u);
    const obs::MetricSnapshot* tenant =
        scraped.find("svc.tenant.0.op_ns");
    ASSERT_NE(tenant, nullptr);
    EXPECT_GE(tenant->hist.count, 3u);
    ::unlink(path.c_str());
}

TEST(ObsScrape, DaemonSurvivesGarbageThenScrapes) {
    const std::string path = temp_sock("garbage");
    Netd daemon(3, uds_params(path));
    {
        // A hand-rolled connection speaking garbage: the daemon answers
        // failed per frame and never tears down.
        const int fd = connect_endpoint(daemon.endpoint(), 5'000);
        const std::vector<std::uint8_t> junk = {0x00, 0xde, 0xad, 0xbe};
        ASSERT_EQ(write_frame(fd, junk), IoStatus::ok);
        std::vector<std::uint8_t> reply;
        ASSERT_EQ(read_frame(fd, reply), IoStatus::ok);
        OpResponseMsg resp;
        ASSERT_TRUE(decode_op_response(reply, resp));
        EXPECT_EQ(resp.status,
                  static_cast<std::uint8_t>(svc::Status::failed));
        // A truncated METRICS body (not the bare scrape request) is also
        // garbage, answered with failed, never a torn snapshot.
        const std::vector<std::uint8_t> half_metrics = {
            static_cast<std::uint8_t>(MsgType::metrics), 0x01};
        ASSERT_EQ(write_frame(fd, half_metrics), IoStatus::ok);
        ASSERT_EQ(read_frame(fd, reply), IoStatus::ok);
        ASSERT_TRUE(decode_op_response(reply, resp));
        EXPECT_EQ(resp.status,
                  static_cast<std::uint8_t>(svc::Status::failed));
        ::close(fd);
    }
    NetClient client(daemon.endpoint());
    const OpResponseMsg ok = client.run(broadcast_sig(3));
    EXPECT_EQ(ok.status, static_cast<std::uint8_t>(svc::Status::ok));
    const obs::RegistrySnapshot scraped = client.scrape();
    EXPECT_GE(scraped.counter("svc.executed"), 1u);
    ::unlink(path.c_str());
}

TEST(ObsJob, RankSnapshotsMergeIntoJobReport) {
    JobSpec spec;
    spec.sig = broadcast_sig(3);
    spec.procs = 2;
    spec.transport = ft::TransportClass::uds;
    const JobResult result = run_job(spec);
    ASSERT_TRUE(result.ok) << result.error;

    // Every rank shipped a snapshot delta with wire activity in it.
    ASSERT_EQ(result.ranks.size(), 2u);
    for (const RankReport& rr : result.ranks) {
        EXPECT_FALSE(rr.metrics.metrics.empty())
            << "rank " << rr.rank << " sent no metrics";
        EXPECT_GT(rr.metrics.counter("net.frame_bytes_out"), 0u)
            << "rank " << rr.rank;
    }
    // The job-level report is exactly the merge of the rank snapshots.
    obs::RegistrySnapshot manual = result.ranks[0].metrics;
    manual.merge(result.ranks[1].metrics);
    ASSERT_EQ(result.metrics.metrics.size(), manual.metrics.size());
    for (std::size_t i = 0; i < manual.metrics.size(); ++i) {
        const obs::MetricSnapshot& a = result.metrics.metrics[i];
        const obs::MetricSnapshot& b = manual.metrics[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.counter_value, b.counter_value) << a.name;
        EXPECT_EQ(a.hist.count, b.hist.count) << a.name;
        EXPECT_EQ(a.hist.sum, b.hist.sum) << a.name;
    }
    EXPECT_EQ(result.metrics.counter("net.frame_bytes_out"),
              result.ranks[0].metrics.counter("net.frame_bytes_out") +
                  result.ranks[1].metrics.counter("net.frame_bytes_out"));
}

} // namespace
} // namespace hcube::net
