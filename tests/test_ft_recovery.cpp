// The recover leg of hcube::ft, closed-loop and differential: every
// single-link kill injected mid-broadcast / mid-scatter must be detected,
// replanned around, and re-executed to a final memory byte-identical to the
// fault-free oracle — on both engines, for every directed link the initial
// schedule uses, across n = 3..8 (stride-sampled at the largest sizes and
// under sanitizers; the sampling offset varies by n so repeated CI runs of
// the matrix cover different links).
//
// The MSBT sweeps additionally prove the survivor-subset claim: the one
// ERSBT crossing the dead link is dropped, and every send of the degraded
// schedule is an edge of a *surviving* ERSBT.
#include "ft/recovery.hpp"
#include "ft/resilient.hpp"

#include "common/check.hpp"
#include "hc/bits.hpp"
#include "routing/schedule_export.hpp"
#include "sim/cycle.hpp"
#include "trees/msbt.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace hcube::ft {
namespace {

using routing::BroadcastDiscipline;
using routing::ScatterPolicy;
using sim::PortModel;
using sim::Schedule;

constexpr std::size_t kAll = static_cast<std::size_t>(-1);

/// How many fault positions a sweep may visit. Exhaustive where the link
/// count is small; stride-sampled for the big cubes, harder under
/// sanitizers (whose serialization makes each recovery ~20x slower).
std::size_t fault_budget(dim_t n) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    return n <= 4 ? kAll : 6;
#else
    return n <= 5 ? kAll : 24;
#endif
}

ResilientParams params_for(rt::Engine engine) {
    ResilientParams p;
    p.threads = 2;
    p.block_elems = 16;
    p.engine = engine;
    // Tight by design: a published block is always visible by pop time, so
    // the bound only ever expires on genuinely missing blocks.
    p.detect.arrival_timeout_us = 500;
    return p;
}

struct LinkUse {
    DirectedLink link;
    std::uint32_t pushes = 0;
};

/// Every directed link the schedule crosses, with its push count (to aim
/// the kill mid-stream), in deterministic order.
std::vector<LinkUse> links_used(const Schedule& s) {
    std::map<std::pair<node_t, node_t>, std::uint32_t> counts;
    for (const sim::ScheduledSend& send : s.sends) {
        ++counts[{send.from, send.to}];
    }
    std::vector<LinkUse> out;
    out.reserve(counts.size());
    for (const auto& [link, pushes] : counts) {
        out.push_back({{link.first, link.second}, pushes});
    }
    return out;
}

enum class Op { bcast_sbt, bcast_msbt, scatter_sbt };

Schedule initial_schedule(Op op, dim_t n, node_t root, packet_t count) {
    switch (op) {
    case Op::bcast_sbt:
        return routing::make_tree_broadcast(
            trees::build_sbt(n, root), BroadcastDiscipline::paced, count,
            PortModel::one_port_full_duplex);
    case Op::bcast_msbt:
        return routing::make_msbt_broadcast(
            n, root, count, PortModel::one_port_full_duplex);
    case Op::scatter_sbt:
        return routing::make_tree_scatter(
            trees::build_sbt(n, root), ScatterPolicy::descending, count,
            PortModel::one_port_full_duplex);
    }
    return {};
}

RecoveryResult run_op(ResilientComm& comm, Op op, node_t root,
                      packet_t count, const FaultPlan& faults) {
    switch (op) {
    case Op::bcast_sbt: return comm.broadcast_sbt(root, count, faults);
    case Op::bcast_msbt: return comm.broadcast_msbt(root, count, faults);
    case Op::scatter_sbt: return comm.scatter_sbt(root, count, faults);
    }
    return {};
}

/// Kills every (sampled) link of the op's schedule mid-stream, one run per
/// link, on both engines, and demands byte-identical recovery each time.
void sweep_single_link_kills(Op op, dim_t n, node_t root, packet_t count) {
    const Schedule initial = initial_schedule(op, n, root, count);
    const std::vector<LinkUse> links = links_used(initial);
    ASSERT_FALSE(links.empty());
    const std::size_t budget = fault_budget(n);
    const std::size_t stride =
        budget == kAll ? 1 : std::max<std::size_t>(1, links.size() / budget);
    const std::size_t first = static_cast<std::size_t>(n) % stride;

    for (const rt::Engine engine :
         {rt::Engine::barrier, rt::Engine::async}) {
        ResilientComm comm(n, params_for(engine));
        for (std::size_t i = first; i < links.size(); i += stride) {
            const DirectedLink dead = links[i].link;
            FaultPlan faults;
            faults.kill_link(dead.from, dead.to, links[i].pushes / 2);

            const RecoveryResult r = run_op(comm, op, root, count, faults);
            const auto where = [&] {
                return std::string(" engine=") +
                       std::string(to_string(engine)) + " n=" +
                       std::to_string(n) + " dead=" +
                       std::to_string(dead.from) + "->" +
                       std::to_string(dead.to);
            };
            ASSERT_TRUE(r.delivered) << where();
            EXPECT_TRUE(r.recovered) << where();
            EXPECT_EQ(r.attempts, 2u) << where();
            ASSERT_EQ(r.reports.size(), 1u) << where();
            EXPECT_EQ(r.reports[0].from, dead.from) << where();
            EXPECT_EQ(r.reports[0].to, dead.to) << where();
            ASSERT_EQ(r.dead_links.size(), 1u) << where();
            EXPECT_EQ(r.dead_links[0], dead) << where();
            EXPECT_FALSE(schedule_uses_link(r.final_schedule, dead))
                << where();
            EXPECT_TRUE(r.stats.clean()) << where();
            EXPECT_EQ(r.stats.blocks_delivered,
                      r.final_schedule.sends.size())
                << where();

            if (op == Op::bcast_msbt) {
                // The survivor-subset argument, checked edge by edge: the
                // dead link's ERSBT was dropped, and every send of the
                // degraded schedule belongs to a surviving tree.
                const dim_t gone = ersbt_using_link(n, root, dead);
                ASSERT_EQ(r.dropped_trees.size(), 1u) << where();
                EXPECT_EQ(r.dropped_trees[0], gone) << where();
                for (const sim::ScheduledSend& send :
                     r.final_schedule.sends) {
                    EXPECT_NE(ersbt_using_link(n, root,
                                               {send.from, send.to}),
                              gone)
                        << where();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery-primitive unit tests
// ---------------------------------------------------------------------------

TEST(FtRecovery, EveryDirectedLinkBelongsToExactlyOneErsbt) {
    constexpr dim_t n = 4;
    constexpr node_t source = 5;
    std::vector<std::uint32_t> edges_of(static_cast<std::size_t>(n), 0);
    for (node_t from = 0; from < (node_t{1} << n); ++from) {
        for (dim_t d = 0; d < n; ++d) {
            const node_t to = hc::flip_bit(from, d);
            if (to == source) {
                continue; // the n links no ERSBT uses
            }
            const dim_t j = ersbt_using_link(n, source, {from, to});
            ASSERT_GE(j, 0);
            ASSERT_LT(j, n);
            EXPECT_EQ(trees::msbt_parent(to, j, source, n), from);
            ++edges_of[static_cast<std::size_t>(j)];
        }
    }
    // Disjoint cover: each of the n trees owns exactly its 2^n - 1 edges.
    for (dim_t j = 0; j < n; ++j) {
        EXPECT_EQ(edges_of[static_cast<std::size_t>(j)],
                  (std::uint32_t{1} << n) - 1);
    }
}

TEST(FtRecovery, LinkIntoTheSourceHasNoErsbt) {
    EXPECT_THROW((void)ersbt_using_link(3, 0, {1, 0}), check_error);
    EXPECT_THROW((void)ersbt_using_link(3, 5, {4, 5}), check_error);
    // Not a cube link at all.
    EXPECT_THROW((void)ersbt_using_link(3, 0, {1, 2}), check_error);
}

TEST(FtRecovery, SurvivorScheduleAvoidsDeadTreeAndStillDelivers) {
    constexpr dim_t n = 4;
    constexpr node_t source = 0;
    constexpr packet_t pps = 2;
    for (dim_t d = 0; d < n; ++d) {
        // One dead link per sweep, chosen inside a different tree each
        // time: the edge into node (1 << d) ^ 1... pick any non-source
        // head and derive its tree's parent edge.
        const node_t to = hc::flip_bit(node_t{0b1010}, d);
        const node_t from = trees::msbt_parent(to, d, source, n);
        const DirectedLink dead{from, to};

        const SurvivorMsbt degraded =
            make_msbt_survivor_broadcast(n, source, pps, dead);
        ASSERT_EQ(degraded.dropped_trees.size(), 1u);
        EXPECT_EQ(degraded.dropped_trees[0], d);
        EXPECT_FALSE(schedule_uses_link(degraded.schedule, dead));

        // The degraded schedule must still be feasible one-port and must
        // deliver every packet everywhere.
        const sim::CycleStats stats = sim::execute_schedule(
            degraded.schedule, PortModel::one_port_full_duplex);
        for (node_t i = 0; i < (node_t{1} << n); ++i) {
            for (packet_t p = 0; p < degraded.schedule.packet_count; ++p) {
                EXPECT_TRUE(stats.holds(i, p))
                    << "node " << i << " misses packet " << p;
            }
        }
    }
}

TEST(FtRecovery, MultiLinkSurvivorDropsEachDeadTreeOnce) {
    constexpr dim_t n = 3;
    constexpr node_t source = 2;
    // Two dead links inside tree 0 and one inside tree 2.
    const node_t a = hc::flip_bit(node_t{5}, 1);
    const node_t b = hc::flip_bit(node_t{7}, 2);
    const std::vector<DirectedLink> dead = {
        {trees::msbt_parent(a, 0, source, n), a},
        {trees::msbt_parent(5, 0, source, n), 5},
        {trees::msbt_parent(b, 2, source, n), b},
    };
    const SurvivorMsbt degraded =
        make_msbt_survivor_broadcast(n, source, 2, dead);
    EXPECT_EQ(degraded.dropped_trees,
              (std::vector<dim_t>{0, 2})); // deduplicated, ascending
    for (const DirectedLink& link : dead) {
        EXPECT_FALSE(schedule_uses_link(degraded.schedule, link));
    }
    const sim::CycleStats stats = sim::execute_schedule(
        degraded.schedule, PortModel::one_port_full_duplex);
    for (node_t i = 0; i < (node_t{1} << n); ++i) {
        for (packet_t p = 0; p < degraded.schedule.packet_count; ++p) {
            EXPECT_TRUE(stats.holds(i, p));
        }
    }
}

TEST(FtRecovery, NoSurvivingTreeThrows) {
    // n = 1: the MSBT is a single ERSBT; killing its only edge leaves
    // nothing to reassign the stream to.
    EXPECT_THROW(
        (void)make_msbt_survivor_broadcast(1, 0, 1, DirectedLink{0, 1}),
        check_error);
}

// ---------------------------------------------------------------------------
// Closed-loop differential sweeps (oracle-verified, both engines)
// ---------------------------------------------------------------------------

TEST(FtRecoverySbtBroadcast, HealsEveryLinkN3) {
    sweep_single_link_kills(Op::bcast_sbt, 3, 0, 4);
}
TEST(FtRecoverySbtBroadcast, HealsEveryLinkN4) {
    sweep_single_link_kills(Op::bcast_sbt, 4, 1, 4);
}
TEST(FtRecoverySbtBroadcast, HealsEveryLinkN5) {
    sweep_single_link_kills(Op::bcast_sbt, 5, 0, 4);
}
TEST(FtRecoverySbtBroadcast, HealsSampledLinksN6) {
    sweep_single_link_kills(Op::bcast_sbt, 6, 0, 4);
}
TEST(FtRecoverySbtBroadcast, HealsSampledLinksN7) {
    sweep_single_link_kills(Op::bcast_sbt, 7, 0, 4);
}
TEST(FtRecoverySbtBroadcast, HealsSampledLinksN8) {
    sweep_single_link_kills(Op::bcast_sbt, 8, 0, 4);
}

TEST(FtRecoveryMsbt, HealsEveryLinkN3) {
    sweep_single_link_kills(Op::bcast_msbt, 3, 0, 6);
}
TEST(FtRecoveryMsbt, HealsEveryLinkN4) {
    sweep_single_link_kills(Op::bcast_msbt, 4, 3, 8);
}
TEST(FtRecoveryMsbt, HealsEveryLinkN5) {
    sweep_single_link_kills(Op::bcast_msbt, 5, 0, 10);
}
TEST(FtRecoveryMsbt, HealsSampledLinksN6) {
    sweep_single_link_kills(Op::bcast_msbt, 6, 0, 12);
}
TEST(FtRecoveryMsbt, HealsSampledLinksN7) {
    sweep_single_link_kills(Op::bcast_msbt, 7, 0, 14);
}
TEST(FtRecoveryMsbt, HealsSampledLinksN8) {
    sweep_single_link_kills(Op::bcast_msbt, 8, 0, 16);
}

TEST(FtRecoveryScatter, HealsEveryLinkN3) {
    sweep_single_link_kills(Op::scatter_sbt, 3, 0, 2);
}
TEST(FtRecoveryScatter, HealsEveryLinkN4) {
    sweep_single_link_kills(Op::scatter_sbt, 4, 2, 2);
}
TEST(FtRecoveryScatter, HealsEveryLinkN5) {
    sweep_single_link_kills(Op::scatter_sbt, 5, 0, 2);
}
TEST(FtRecoveryScatter, HealsSampledLinksN6) {
    sweep_single_link_kills(Op::scatter_sbt, 6, 0, 2);
}
TEST(FtRecoveryScatter, HealsSampledLinksN7) {
    sweep_single_link_kills(Op::scatter_sbt, 7, 0, 2);
}
TEST(FtRecoveryScatter, HealsSampledLinksN8) {
    sweep_single_link_kills(Op::scatter_sbt, 8, 0, 2);
}

// ---------------------------------------------------------------------------
// Beyond the single-kill sweep
// ---------------------------------------------------------------------------

TEST(FtRecovery, CorruptionTriggersTheSameReplanLoop) {
    constexpr dim_t n = 4;
    const Schedule initial = initial_schedule(Op::bcast_sbt, n, 0, 4);
    const std::vector<LinkUse> links = links_used(initial);
    const DirectedLink target = links[links.size() / 2].link;

    FaultPlan faults;
    faults.corrupt(target.from, target.to, 1);
    ResilientComm comm(n, params_for(rt::Engine::barrier));
    const RecoveryResult r = comm.broadcast_sbt(0, 4, faults);
    ASSERT_TRUE(r.delivered);
    EXPECT_TRUE(r.recovered);
    ASSERT_EQ(r.reports.size(), 1u);
    EXPECT_EQ(r.reports[0].cls, DetectClass::checksum_mismatch);
    EXPECT_EQ(r.reports[0].from, target.from);
    EXPECT_EQ(r.reports[0].to, target.to);
    EXPECT_FALSE(schedule_uses_link(r.final_schedule, target));
}

TEST(FtRecovery, TwoDeadLinksHealOverThreeAttempts) {
    constexpr dim_t n = 4;
    constexpr node_t root = 0;
    constexpr packet_t packets = 8; // 2 per ERSBT stream
    // Two kills in different ERSBTs: the second only bites after the first
    // replan, so the loop must iterate.
    const node_t a = hc::flip_bit(node_t{0b0110}, 0);
    const node_t b = hc::flip_bit(node_t{0b1001}, 2);
    const DirectedLink dead0{trees::msbt_parent(a, 0, root, n), a};
    const DirectedLink dead1{trees::msbt_parent(b, 2, root, n), b};

    FaultPlan faults;
    faults.kill_link(dead0.from, dead0.to, 0);
    faults.kill_link(dead1.from, dead1.to, 0);

    for (const rt::Engine engine :
         {rt::Engine::barrier, rt::Engine::async}) {
        ResilientComm comm(n, params_for(engine));
        const RecoveryResult r = comm.broadcast_msbt(root, packets, faults);
        ASSERT_TRUE(r.delivered);
        EXPECT_TRUE(r.recovered);
        EXPECT_EQ(r.attempts, 3u);
        ASSERT_EQ(r.dead_links.size(), 2u);
        EXPECT_EQ(r.dropped_trees, (std::vector<dim_t>{0, 2}));
        EXPECT_FALSE(schedule_uses_link(r.final_schedule, dead0));
        EXPECT_FALSE(schedule_uses_link(r.final_schedule, dead1));
    }
}

TEST(FtRecovery, InertFaultPlanFinishesFirstAttempt) {
    ResilientComm comm(3, params_for(rt::Engine::async));
    // A fault on a link no broadcast from node 0 ever uses.
    FaultPlan faults;
    faults.kill_link(1, 0, 0);
    const RecoveryResult r = comm.broadcast_sbt(0, 4, faults);
    EXPECT_TRUE(r.delivered);
    EXPECT_FALSE(r.recovered);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_TRUE(r.reports.empty());
}

TEST(FtRecovery, OracleIsCachedAcrossASweep) {
    ResilientComm comm(3, params_for(rt::Engine::barrier));
    FaultPlan none;
    const RecoveryResult first = comm.broadcast_sbt(0, 4, none);
    const RecoveryResult second = comm.broadcast_sbt(0, 4, none);
    EXPECT_TRUE(first.delivered);
    EXPECT_TRUE(second.delivered);
    // Same op signature → the cached oracle (and its wall clock) is reused.
    EXPECT_EQ(first.oracle_seconds, second.oracle_seconds);
}

} // namespace
} // namespace hcube::ft
