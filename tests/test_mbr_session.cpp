// Membership through the service layer: epoch-keyed plan caching with
// surgical invalidation, structured preflight rejection, and the
// differential guarantee that a full view lowers every signature to the
// byte-identical pre-membership schedule.
#include "svc/session.hpp"

#include "common/check.hpp"
#include "mbr/view.hpp"
#include "svc/service.hpp"
#include "svc/signature.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace hcube::svc {
namespace {

using model::CommParams;

constexpr CommParams synthetic{1.0, 1e-6};

Signature sig_of(Op op, Family family, dim_t n, node_t root,
                 sim::packet_t packets, std::uint32_t block) {
    Signature s;
    s.op = op;
    s.family = family;
    s.n = n;
    s.root = root;
    s.packets = packets;
    s.block_elems = block;
    return s;
}

SessionParams fast_session(std::uint32_t threads = 2) {
    SessionParams p;
    p.threads = threads;
    p.comm = synthetic;
    return p;
}

void expect_same_schedule(const sim::Schedule& a, const sim::Schedule& b) {
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.packet_count, b.packet_count);
    EXPECT_EQ(a.initial_holder, b.initial_holder);
    EXPECT_EQ(a.sends, b.sends);
}

// ------------------------------------------------------------------- diff

TEST(MbrDiff, FullViewLowersEveryFamilyByteIdentically) {
    const std::vector<Signature> sigs = {
        sig_of(Op::broadcast, Family::sbt, 4, 3, 4, 16),
        sig_of(Op::broadcast, Family::msbt, 4, 1, 8, 16),
        sig_of(Op::scatter, Family::sbt, 4, 0, 2, 16),
        sig_of(Op::scatter, Family::bst, 4, 2, 2, 16),
        sig_of(Op::gather, Family::sbt, 4, 5, 2, 16),
        sig_of(Op::reduce, Family::sbt, 4, 0, 2, 16),
        sig_of(Op::allgather, Family::sbt, 4, 0, 1, 16),
        sig_of(Op::alltoall, Family::sbt, 4, 0, 1, 16),
    };
    const mbr::View full(4);
    for (const Signature& sig : sigs) {
        const GeneratedSchedule legacy = make_schedule(sig);
        const GeneratedSchedule member = make_schedule(sig, full);
        expect_same_schedule(member.exec, legacy.exec);
        expect_same_schedule(member.feasibility, legacy.feasibility);
        EXPECT_EQ(member.mode, legacy.mode) << sig.to_string();
    }
}

TEST(MbrDiff, IncompleteViewRefusesNonMemberFamilies) {
    mbr::View view(3);
    view.leave(5);
    EXPECT_THROW((void)make_schedule(
                     sig_of(Op::broadcast, Family::msbt, 3, 0, 6, 16), view),
                 check_error);
    EXPECT_THROW((void)make_schedule(
                     sig_of(Op::allgather, Family::sbt, 3, 0, 1, 16), view),
                 check_error);
    EXPECT_THROW((void)make_schedule(
                     sig_of(Op::broadcast, Family::sbt, 3, 5, 2, 16), view),
                 check_error); // dead root
}

// ---------------------------------------------------------------- session

TEST(MbrSession, PreflightAcceptsTheFullViewAndTransitionsAreStrict) {
    Session session(4, fast_session());
    const Signature ok = sig_of(Op::broadcast, Family::sbt, 4, 0, 2, 16);
    EXPECT_EQ(session.preflight(ok), std::nullopt);
    EXPECT_EQ(session.view_epoch(), 0u);

    // Strictness follows mbr::View, with the session untouched on throw.
    EXPECT_THROW((void)session.join(9), check_error); // already live
    EXPECT_EQ(session.view_epoch(), 0u);
    EXPECT_EQ(session.epoch_evictions(), 0u);
}

TEST(MbrSession, PreflightRejectsDeadRootWithNearestSuggestion) {
    Session session(4, fast_session());
    (void)session.leave(5);
    const auto rejection =
        session.preflight(sig_of(Op::broadcast, Family::sbt, 4, 5, 2, 16));
    ASSERT_TRUE(rejection.has_value());
    EXPECT_EQ(rejection->reason, RejectReason::root_not_live);
    ASSERT_TRUE(rejection->suggested_root.has_value());
    EXPECT_EQ(*rejection->suggested_root, 4u); // 5^4 == 1, nearest flip

    // Families/ops with no incomplete-cube construction are refused on
    // the incomplete sub-cube...
    const auto msbt =
        session.preflight(sig_of(Op::broadcast, Family::msbt, 4, 0, 8, 16));
    ASSERT_TRUE(msbt.has_value());
    EXPECT_EQ(msbt->reason, RejectReason::family_unsupported);
    const auto a2a =
        session.preflight(sig_of(Op::alltoall, Family::sbt, 4, 0, 1, 16));
    ASSERT_TRUE(a2a.has_value());
    EXPECT_EQ(a2a->reason, RejectReason::op_unsupported);
    // ...but stay admissible on a sub-cube the hole does not touch.
    EXPECT_EQ(session.preflight(
                  sig_of(Op::broadcast, Family::msbt, 2, 0, 4, 16)),
              std::nullopt);

    EXPECT_EQ(session
                  .preflight(sig_of(Op::broadcast, Family::sbt, 5, 0, 2, 16))
                  ->reason,
              RejectReason::dimension_out_of_range);
    EXPECT_EQ(session
                  .preflight(sig_of(Op::broadcast, Family::sbt, 4, 16, 2, 16))
                  ->reason,
              RejectReason::root_out_of_range);
}

TEST(MbrSession, ExecutesVerifiedOnAnIncompleteView) {
    Session session(4, fast_session());
    (void)session.leave(9);
    (void)session.leave(14);
    const std::vector<Signature> sigs = {
        sig_of(Op::broadcast, Family::sbt, 4, 0, 3, 16),
        sig_of(Op::scatter, Family::sbt, 4, 0, 2, 16),
        sig_of(Op::gather, Family::sbt, 4, 0, 2, 16),
        sig_of(Op::reduce, Family::sbt, 4, 0, 2, 16),
    };
    for (const Signature& sig : sigs) {
        const ExecStats stats = session.execute(sig);
        EXPECT_TRUE(stats.verified) << sig.to_string();
        EXPECT_EQ(stats.member_count, 14u) << sig.to_string();
        EXPECT_EQ(stats.view_epoch, 2u) << sig.to_string();
    }
}

TEST(MbrSession, TransitionsEvictExactlyTheStaleSubcubes) {
    Session session(4, fast_session());
    const Signature small = sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 16);
    const Signature large = sig_of(Op::broadcast, Family::sbt, 4, 0, 2, 16);
    EXPECT_TRUE(session.execute(small).verified);
    EXPECT_TRUE(session.execute(large).verified);
    EXPECT_EQ(session.cached_plans(), 2u);

    // The hole at 9 is above 2^3: only the 4-cube plan goes stale.
    EXPECT_EQ(session.leave(9), 1u);
    EXPECT_EQ(session.epoch_evictions(), 1u);
    EXPECT_EQ(session.cached_plans(), 1u);
    EXPECT_TRUE(session.execute(small).cache_hit);
    const ExecStats rebuilt = session.execute(large);
    EXPECT_FALSE(rebuilt.cache_hit);
    EXPECT_TRUE(rebuilt.verified);
    EXPECT_EQ(rebuilt.member_count, 15u);

    // Rejoining flips the epoch again: the incomplete-view plan goes too.
    EXPECT_EQ(session.join(9), 1u);
    EXPECT_EQ(session.epoch_evictions(), 2u);
    const ExecStats full_again = session.execute(large);
    EXPECT_FALSE(full_again.cache_hit);
    EXPECT_TRUE(full_again.verified);
    EXPECT_EQ(full_again.member_count, 16u);
    EXPECT_TRUE(session.execute(small).cache_hit); // never touched
}

TEST(MbrSession, ApplyIsOneAtomicTransition) {
    Session session(3, fast_session());
    mbr::Delta delta;
    delta.leaves = {1, 6};
    EXPECT_EQ(session.apply(delta), 0u);
    EXPECT_EQ(session.view_epoch(), 1u); // one bump for the batch
    EXPECT_EQ(session.view().count(), 6u);

    mbr::Delta bad;
    bad.leaves = {1}; // already dead: atomic validation, no mutation
    EXPECT_THROW((void)session.apply(bad), check_error);
    EXPECT_EQ(session.view_epoch(), 1u);
}

TEST(MbrSession, ExecuteThrowsStructuredRejection) {
    Session session(3, fast_session());
    (void)session.leave(5);
    try {
        (void)session.execute(
            sig_of(Op::broadcast, Family::sbt, 3, 5, 2, 16));
        FAIL() << "dead-root execute must throw rejected_error";
    } catch (const rejected_error& ex) {
        EXPECT_EQ(ex.rejection().reason, RejectReason::root_not_live);
        ASSERT_TRUE(ex.rejection().suggested_root.has_value());
        EXPECT_EQ(*ex.rejection().suggested_root, 4u);
    }
}

TEST(MbrSession, BarrierEngineVerifiesIncompleteViewsToo) {
    SessionParams params = fast_session();
    params.engine = rt::Engine::barrier;
    Session session(4, params);
    (void)session.leave(7);
    (void)session.leave(12);
    const ExecStats stats = session.execute(
        sig_of(Op::broadcast, Family::sbt, 4, 1, 2, 16));
    EXPECT_TRUE(stats.verified);
    EXPECT_EQ(stats.member_count, 14u);
}

// ---------------------------------------------------------------- service

TEST(MbrService, RejectionTravelsThroughTheFrontDoor) {
    ServiceParams params;
    params.session = fast_session();
    Service service(3, params);
    (void)service.session().leave(5);
    const Response response =
        service.run(sig_of(Op::broadcast, Family::sbt, 3, 5, 2, 16));
    EXPECT_EQ(response.status, Status::failed);
    ASSERT_TRUE(response.rejection.has_value());
    EXPECT_EQ(response.rejection->reason, RejectReason::root_not_live);
    ASSERT_TRUE(response.rejection->suggested_root.has_value());
    EXPECT_EQ(*response.rejection->suggested_root, 4u);

    // A retargeted request at the suggested root goes through verified.
    const Response retry = service.run(sig_of(
        Op::broadcast, Family::sbt, 3, *response.rejection->suggested_root,
        2, 16));
    EXPECT_EQ(retry.status, Status::ok);
    EXPECT_TRUE(retry.stats.verified);
    EXPECT_EQ(retry.stats.member_count, 7u);
}

} // namespace
} // namespace hcube::svc
