// Unit tests for hc/gray.hpp — binary-reflected Gray codes (paper §3.4, §5.2).
#include "hc/gray.hpp"

#include "hc/bits.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <set>

namespace hcube::hc {
namespace {

TEST(Gray, EncodeDecodeRoundTrip) {
    for (node_t i = 0; i < 4096; ++i) {
        EXPECT_EQ(gray_decode(gray_encode(i)), i);
    }
}

TEST(Gray, ConsecutiveCodewordsDifferInOneBit) {
    for (node_t i = 0; i + 1 < 4096; ++i) {
        EXPECT_EQ(hamming(gray_encode(i), gray_encode(i + 1)), 1);
    }
}

TEST(Gray, TransitionSequenceMatchesCodewords) {
    for (node_t i = 0; i + 1 < 2048; ++i) {
        const node_t diff = gray_encode(i) ^ gray_encode(i + 1);
        EXPECT_EQ(node_t{1} << gray_transition(i), diff);
    }
}

// §5.2: descending destination addresses use root ports in BRGC transition
// order — port 0 every other step, port 1 every fourth, ...
TEST(Gray, TransitionSequenceIsTheRulerSequence) {
    EXPECT_EQ(gray_transition(0), 0);
    EXPECT_EQ(gray_transition(1), 1);
    EXPECT_EQ(gray_transition(2), 0);
    EXPECT_EQ(gray_transition(3), 2);
    EXPECT_EQ(gray_transition(4), 0);
    EXPECT_EQ(gray_transition(5), 1);
    EXPECT_EQ(gray_transition(6), 0);
    EXPECT_EQ(gray_transition(7), 3);
}

TEST(Gray, PathIsHamiltonian) {
    for (dim_t n = 1; n <= 8; ++n) {
        for (node_t start : {node_t{0}, (node_t{1} << n) - 1}) {
            const auto path = gray_path(n, start);
            ASSERT_EQ(path.size(), std::size_t{1} << n);
            EXPECT_EQ(path.front(), start);
            std::set<node_t> seen(path.begin(), path.end());
            EXPECT_EQ(seen.size(), path.size()); // visits every node once
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                EXPECT_EQ(hamming(path[i], path[i + 1]), 1);
            }
        }
    }
}

} // namespace
} // namespace hcube::hc
