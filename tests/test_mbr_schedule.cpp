// Member collectives (routing::make_member_*) — differential against the
// full-cube generators and semantic on incomplete views:
//
//   * Full view: broadcast/scatter/gather are BYTE-identical to the
//     make_tree_* schedules over build_sbt — same sends, same order, same
//     packet ids — so pre-membership consumers replay unchanged.
//   * Partial view: every schedule touches only live members, the cycle
//     executor proves feasibility, and delivery is exactly the member
//     contract (broadcast: every live member holds every packet; scatter:
//     dense member-rank packet ids land on their destinations).
#include "routing/schedule_export.hpp"

#include "common/check.hpp"
#include "mbr/view.hpp"
#include "sim/cycle.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hcube::routing {
namespace {

using hc::dim_t;
using hc::node_t;
using mbr::View;
using sim::packet_t;
using sim::PortModel;
using sim::Schedule;

void expect_same_schedule(const Schedule& a, const Schedule& b) {
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.packet_count, b.packet_count);
    EXPECT_EQ(a.initial_holder, b.initial_holder);
    EXPECT_EQ(a.sends, b.sends); // element-wise, order included
}

/// Final holder of each packet (the scatter delivery walk).
std::vector<node_t> terminal_dest(const Schedule& schedule) {
    std::vector<std::uint32_t> last(schedule.packet_count, 0);
    std::vector<node_t> dest(schedule.initial_holder);
    for (const sim::ScheduledSend& send : schedule.sends) {
        if (send.cycle >= last[send.packet]) {
            last[send.packet] = send.cycle + 1;
            dest[send.packet] = send.to;
        }
    }
    return dest;
}

TEST(MbrSchedule, FullViewBroadcastIsByteIdentical) {
    for (dim_t n = 1; n <= 5; ++n) {
        const View view(n);
        const node_t root = node_t{3} & ((node_t{1} << n) - 1);
        for (const BroadcastDiscipline discipline :
             {BroadcastDiscipline::port_oriented,
              BroadcastDiscipline::paced}) {
            expect_same_schedule(
                make_member_broadcast(view, root, discipline, 4,
                                      PortModel::one_port_full_duplex),
                make_tree_broadcast(trees::build_sbt(n, root), discipline, 4,
                                    PortModel::one_port_full_duplex));
        }
    }
}

TEST(MbrSchedule, FullViewScatterAndGatherAreByteIdentical) {
    for (dim_t n = 1; n <= 5; ++n) {
        const View view(n);
        for (const node_t root : {node_t{0}, (node_t{1} << n) - 1}) {
            const trees::SpanningTree sbt = trees::build_sbt(n, root);
            expect_same_schedule(
                make_member_scatter(view, root, 2),
                make_tree_scatter(sbt, ScatterPolicy::descending, 2,
                                  PortModel::one_port_full_duplex));
            expect_same_schedule(
                make_member_gather(view, root, 2),
                make_tree_gather(sbt, ScatterPolicy::descending, 2,
                                 PortModel::one_port_full_duplex));
        }
    }
}

TEST(MbrSchedule, MemberBroadcastDeliversEveryLiveMember) {
    View view(4);
    view.leave(3);
    view.leave(8);
    view.leave(13); // N = 13, not a power of two
    const packet_t packets = 3;
    const Schedule schedule = make_member_broadcast(
        view, 5, BroadcastDiscipline::port_oriented, packets,
        PortModel::one_port_full_duplex);
    for (const sim::ScheduledSend& send : schedule.sends) {
        EXPECT_TRUE(view.contains(send.from));
        EXPECT_TRUE(view.contains(send.to));
    }
    const sim::CycleStats stats =
        sim::execute_schedule(schedule, PortModel::one_port_full_duplex);
    for (const node_t v : view.members()) {
        for (packet_t p = 0; p < packets; ++p) {
            EXPECT_TRUE(stats.holds(v, p)) << "node " << v;
        }
    }
    EXPECT_EQ(stats.total_sends,
              static_cast<std::uint64_t>(view.count() - 1) * packets);
}

TEST(MbrSchedule, MemberScatterIdsAreDenseMemberRanks) {
    View view(4);
    view.leave(1);
    view.leave(6);
    view.leave(11);
    const node_t root = 2;
    const packet_t ppd = 2;
    const Schedule schedule = make_member_scatter(view, root, ppd);
    EXPECT_EQ(schedule.packet_count,
              static_cast<packet_t>(view.count() - 1) * ppd);

    // Feasible one-port, and every packet's terminal destination is the
    // member its reference packet id names — the O(N)-scan spec and the
    // precomputed table in make_member_scatter must agree.
    (void)sim::execute_schedule(schedule, PortModel::one_port_full_duplex);
    const std::vector<node_t> dest = terminal_dest(schedule);
    std::vector<bool> seen(static_cast<std::size_t>(schedule.packet_count),
                           false);
    for (const node_t v : view.members()) {
        if (v == root) {
            continue;
        }
        for (packet_t k = 0; k < ppd; ++k) {
            const packet_t id =
                member_scatter_packet_id(view, v, root, ppd, k);
            ASSERT_LT(id, schedule.packet_count);
            EXPECT_FALSE(seen[id]) << "packet id collision at " << id;
            seen[id] = true;
            EXPECT_EQ(dest[id], v) << "packet " << id;
        }
    }
}

TEST(MbrSchedule, MemberGatherCollectsEverythingAtTheRoot) {
    View view(3);
    view.leave(4);
    const node_t root = 1;
    const Schedule schedule = make_member_gather(view, root, 2);
    const sim::CycleStats stats =
        sim::execute_schedule(schedule, PortModel::one_port_full_duplex);
    for (packet_t p = 0; p < schedule.packet_count; ++p) {
        EXPECT_TRUE(stats.holds(root, p));
    }
}

TEST(MbrSchedule, MemberOpsRequireALiveRoot) {
    View view(3);
    view.leave(2);
    EXPECT_THROW((void)make_member_broadcast(
                     view, 2, BroadcastDiscipline::paced, 1,
                     PortModel::one_port_full_duplex),
                 check_error);
    EXPECT_THROW((void)make_member_scatter(view, 2, 1), check_error);
}

TEST(MbrSchedule, NonPowerOfTwoSweepAcrossDimensions) {
    // n = 3..8 with a deterministic hole pattern (root 0 always live):
    // broadcast and scatter stay feasible and deliver their contracts at
    // every non-power-of-two member count.
    for (dim_t n = 3; n <= 8; ++n) {
        View view(n);
        for (node_t v = 3; v < (node_t{1} << n); v += 7) {
            view.leave(v);
        }
        ASSERT_FALSE(view.full());

        const Schedule bcast = make_member_broadcast(
            view, 0, BroadcastDiscipline::paced, 2,
            PortModel::one_port_full_duplex);
        const sim::CycleStats bstats =
            sim::execute_schedule(bcast, PortModel::one_port_full_duplex);
        EXPECT_EQ(bstats.total_sends,
                  static_cast<std::uint64_t>(view.count() - 1) * 2);

        const Schedule scat = make_member_scatter(view, 0, 1);
        const std::vector<node_t> dest = terminal_dest(scat);
        (void)sim::execute_schedule(scat, PortModel::one_port_full_duplex);
        std::vector<bool> hit(static_cast<std::size_t>(1) << n, false);
        for (const node_t d : dest) {
            EXPECT_TRUE(view.contains(d));
            EXPECT_FALSE(hit[d]);
            hit[d] = true;
        }
    }
}

} // namespace
} // namespace hcube::routing
