// Unit tests for hc/bits.hpp — the address arithmetic of paper §2.
#include "hc/bits.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hcube::hc {
namespace {

TEST(Bits, WeightCountsOneBits) {
    EXPECT_EQ(weight(0b0), 0);
    EXPECT_EQ(weight(0b1), 1);
    EXPECT_EQ(weight(0b1011), 3);
    EXPECT_EQ(weight(0xffffffffu), 32);
}

TEST(Bits, HammingIsWeightOfXor) {
    EXPECT_EQ(hamming(0b1010, 0b1010), 0);
    EXPECT_EQ(hamming(0b1010, 0b0101), 4);
    EXPECT_EQ(hamming(0, 0b100), 1);
}

TEST(Bits, TestAndFlipBitRoundTrip) {
    const node_t x = 0b1001101;
    for (dim_t j = 0; j < 8; ++j) {
        EXPECT_EQ(test_bit(flip_bit(x, j), j), !test_bit(x, j));
        EXPECT_EQ(flip_bit(flip_bit(x, j), j), x);
    }
}

TEST(Bits, FlipBitIsACubeNeighbor) {
    for (node_t x = 0; x < 64; ++x) {
        for (dim_t j = 0; j < 6; ++j) {
            EXPECT_EQ(hamming(x, flip_bit(x, j)), 1);
        }
    }
}

TEST(Bits, HighestOneBit) {
    EXPECT_EQ(highest_one_bit(0), -1);
    EXPECT_EQ(highest_one_bit(1), 0);
    EXPECT_EQ(highest_one_bit(0b100), 2);
    EXPECT_EQ(highest_one_bit(0b101100), 5);
}

TEST(Bits, LowestOneBit) {
    EXPECT_EQ(lowest_one_bit(0), -1);
    EXPECT_EQ(lowest_one_bit(1), 0);
    EXPECT_EQ(lowest_one_bit(0b101100), 2);
}

TEST(Bits, LowMask) {
    EXPECT_EQ(low_mask(1), 0b1u);
    EXPECT_EQ(low_mask(4), 0b1111u);
    EXPECT_EQ(low_mask(20), (node_t{1} << 20) - 1);
}

// The paper's k for the MSBT: first one bit cyclically to the right of bit j.
TEST(Bits, FirstOneRightCyclicScansDownAndWraps) {
    const dim_t n = 6;
    // c = 110110: right of bit 1 -> bit 0 is 0, wrap to bit 5 which is 1.
    EXPECT_EQ(first_one_right_cyclic(0b110110, 1, n), 5);
    // right of bit 2 -> bit 1 is 1.
    EXPECT_EQ(first_one_right_cyclic(0b110110, 2, n), 1);
    // right of bit 5 -> bit 4 is 1.
    EXPECT_EQ(first_one_right_cyclic(0b110110, 5, n), 4);
}

TEST(Bits, FirstOneRightCyclicSingleBitReturnsJ) {
    const dim_t n = 5;
    for (dim_t j = 0; j < n; ++j) {
        EXPECT_EQ(first_one_right_cyclic(node_t{1} << j, j, n), j);
    }
}

TEST(Bits, FirstOneRightCyclicZeroIsMinusOne) {
    EXPECT_EQ(first_one_right_cyclic(0, 3, 6), -1);
}

// Exhaustive cross-check against a direct definition for n = 6.
TEST(Bits, FirstOneRightCyclicExhaustive) {
    const dim_t n = 6;
    for (node_t c = 1; c < (node_t{1} << n); ++c) {
        for (dim_t j = 0; j < n; ++j) {
            dim_t expected = -1;
            for (dim_t step = 1; step <= n; ++step) {
                const dim_t pos = ((j - step) % n + n) % n;
                if (test_bit(c, pos)) {
                    expected = pos;
                    break;
                }
            }
            EXPECT_EQ(first_one_right_cyclic(c, j, n), expected)
                << "c=" << c << " j=" << j;
        }
    }
}

} // namespace
} // namespace hcube::hc
