// Pins the runtime's SIMD block checksum to an independent xxHash64
// reference implementation, and the dispatched path (AVX2 where present)
// to the portable scalar path, bit for bit — over randomized sizes
// including the sub-stripe (< 4 words) and non-lane-multiple tails.
//
// The reference below is a straight transliteration of the xxHash64
// specification (seed 0) over raw bytes, written independently from
// src/rt/simd.cpp: it keeps the byte-oriented 8/4/1-byte tail handling the
// kernel specializes away, so agreement is evidence the kernel implements
// the algorithm rather than merely agreeing with itself.
//
// Suites are named Rt* so the sanitizer CI jobs (ctest -R '^(Rt|Ft|Svc)')
// include them.
#include "rt/simd.hpp"

#include "rt/checksum.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace hcube::rt {
namespace {

// --------------------------------------------------------------------------
// Independent xxHash64 reference (seed 0), byte-oriented, per the spec.
// Little-endian reads match the kernel's memcpy of whole words on every
// platform this repo targets.
// --------------------------------------------------------------------------

constexpr std::uint64_t kRefP1 = 11400714785074694791ULL;
constexpr std::uint64_t kRefP2 = 14029467366897019727ULL;
constexpr std::uint64_t kRefP3 = 1609587929392839161ULL;
constexpr std::uint64_t kRefP4 = 9650029242287828579ULL;
constexpr std::uint64_t kRefP5 = 2870177450012600261ULL;

std::uint64_t ref_rotl(std::uint64_t x, unsigned r) {
    return (x << r) | (x >> (64u - r));
}

std::uint64_t ref_read64(const unsigned char* p) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint32_t ref_read32(const unsigned char* p) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t ref_round(std::uint64_t acc, std::uint64_t input) {
    acc += input * kRefP2;
    acc = ref_rotl(acc, 31);
    acc *= kRefP1;
    return acc;
}

std::uint64_t ref_merge_round(std::uint64_t acc, std::uint64_t val) {
    acc ^= ref_round(0, val);
    acc = acc * kRefP1 + kRefP4;
    return acc;
}

std::uint64_t xxh64_reference(const void* input, std::size_t len,
                              std::uint64_t seed) {
    const auto* p = static_cast<const unsigned char*>(input);
    const unsigned char* const end = p + len;
    std::uint64_t h;
    if (len >= 32) {
        std::uint64_t v1 = seed + kRefP1 + kRefP2;
        std::uint64_t v2 = seed + kRefP2;
        std::uint64_t v3 = seed;
        std::uint64_t v4 = seed - kRefP1;
        do {
            v1 = ref_round(v1, ref_read64(p));
            v2 = ref_round(v2, ref_read64(p + 8));
            v3 = ref_round(v3, ref_read64(p + 16));
            v4 = ref_round(v4, ref_read64(p + 24));
            p += 32;
        } while (p + 32 <= end);
        h = ref_rotl(v1, 1) + ref_rotl(v2, 7) + ref_rotl(v3, 12) +
            ref_rotl(v4, 18);
        h = ref_merge_round(h, v1);
        h = ref_merge_round(h, v2);
        h = ref_merge_round(h, v3);
        h = ref_merge_round(h, v4);
    } else {
        h = seed + kRefP5;
    }
    h += static_cast<std::uint64_t>(len);
    while (p + 8 <= end) {
        h ^= ref_round(0, ref_read64(p));
        h = ref_rotl(h, 27) * kRefP1 + kRefP4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<std::uint64_t>(ref_read32(p)) * kRefP1;
        h = ref_rotl(h, 23) * kRefP2 + kRefP3;
        p += 4;
    }
    while (p < end) {
        h ^= static_cast<std::uint64_t>(*p) * kRefP5;
        h = ref_rotl(h, 11) * kRefP1;
        ++p;
    }
    h ^= h >> 33;
    h *= kRefP2;
    h ^= h >> 29;
    h *= kRefP3;
    h ^= h >> 32;
    return h;
}

/// Random doubles whose *bit patterns* cover the full 64-bit space (NaNs
/// and denormals included — the checksum hashes bits, not values).
std::vector<double> random_block(std::mt19937_64& rng, std::size_t n) {
    std::vector<double> block(n);
    for (double& d : block) {
        const std::uint64_t bits = rng();
        std::memcpy(&d, &bits, sizeof(d));
    }
    return block;
}

TEST(RtChecksum, EmptyInputIsTheKnownXxh64Vector) {
    // xxh64("", seed 0) — the published test vector.
    EXPECT_EQ(simd::checksum_scalar(nullptr, 0), 0xEF46DB3751D8E999ULL);
    EXPECT_EQ(simd::checksum(nullptr, 0), 0xEF46DB3751D8E999ULL);
}

TEST(RtChecksum, ScalarMatchesIndependentReference) {
    std::mt19937_64 rng(0x9E3779B97F4A7C15ULL);
    // Every size 0..67 hits all stripe/tail phases; the larger sizes add
    // multi-stripe coverage including non-multiple-of-4 tails.
    for (std::size_t n = 0; n <= 67; ++n) {
        const std::vector<double> block = random_block(rng, n);
        EXPECT_EQ(simd::checksum_scalar(block.data(), n),
                  xxh64_reference(block.data(), n * sizeof(double), 0))
            << "n=" << n;
    }
    for (const std::size_t n : {255u, 256u, 257u, 1021u, 4096u}) {
        const std::vector<double> block = random_block(rng, n);
        EXPECT_EQ(simd::checksum_scalar(block.data(), n),
                  xxh64_reference(block.data(), n * sizeof(double), 0))
            << "n=" << n;
    }
}

TEST(RtChecksum, DispatchedPathIsBitIdenticalToScalar) {
    // On AVX2 hardware this compares the vector path against the scalar
    // path; on anything else (or under HCUBE_CHECKSUM_SCALAR /
    // HCUBE_CHECKSUM=scalar) both sides are the scalar path and the test
    // is trivially green — the forced-scalar CI leg covers that half.
    std::mt19937_64 rng(0xC2B2AE3D27D4EB4FULL);
    for (std::size_t n = 0; n <= 67; ++n) {
        const std::vector<double> block = random_block(rng, n);
        EXPECT_EQ(simd::checksum(block.data(), n),
                  simd::checksum_scalar(block.data(), n))
            << "n=" << n << " dispatch=" << simd::dispatch_name();
    }
    for (const std::size_t n : {512u, 1023u, 4097u}) {
        const std::vector<double> block = random_block(rng, n);
        EXPECT_EQ(simd::checksum(block.data(), n),
                  simd::checksum_scalar(block.data(), n))
            << "n=" << n << " dispatch=" << simd::dispatch_name();
    }
}

TEST(RtChecksum, EveryBitFlipChangesTheDigest) {
    std::mt19937_64 rng(42);
    std::vector<double> block = random_block(rng, 37);
    const std::uint64_t base = simd::checksum(block.data(), block.size());
    for (const std::size_t word : {0u, 3u, 4u, 35u, 36u}) {
        for (const unsigned bit : {0u, 31u, 63u}) {
            std::uint64_t bits;
            std::memcpy(&bits, &block[word], sizeof(bits));
            bits ^= std::uint64_t{1} << bit;
            std::memcpy(&block[word], &bits, sizeof(bits));
            EXPECT_NE(simd::checksum(block.data(), block.size()), base)
                << "word=" << word << " bit=" << bit;
            bits ^= std::uint64_t{1} << bit;
            std::memcpy(&block[word], &bits, sizeof(bits));
        }
    }
    EXPECT_EQ(simd::checksum(block.data(), block.size()), base);
}

TEST(RtChecksum, DispatchNameIsAKnownTarget) {
    const std::string name = simd::dispatch_name();
    EXPECT_TRUE(name == "avx2" || name == "avx2-reduce" ||
                name == "scalar")
        << name;
}

TEST(RtChecksum, BlockAndCanonicalChecksumsUseTheSameAlgorithm) {
    // canonical_checksum must equal the digest of the materialized
    // canonical block — the property that lets a receiver's O(1)
    // descriptor compare stand in for hashing the bytes.
    for (const std::size_t elems : {1u, 3u, 8u, 33u, 256u}) {
        std::vector<double> block(elems);
        fill_canonical(block, 7);
        EXPECT_EQ(block_checksum(block), canonical_checksum(7, elems))
            << "elems=" << elems;
        EXPECT_EQ(block_checksum(block),
                  simd::checksum(block.data(), elems));
    }
}

TEST(RtSimd, AccumulateIsBitExactAcrossPaths) {
    // Elementwise double addition must not be reassociated: the dispatched
    // path, the scalar path, and a plain loop must agree bit for bit on
    // every element — lane-multiple and ragged sizes alike.
    std::mt19937_64 rng(0x165667B19E3779F9ULL);
    std::uniform_real_distribution<double> dist(-1e12, 1e12);
    // n = 0 is exercised separately against null-safe no-op semantics.
    simd::accumulate(nullptr, nullptr, 0);
    for (const std::size_t n : {1u, 5u, 8u, 9u, 16u, 31u, 257u, 1024u}) {
        std::vector<double> dst(n), src(n);
        for (std::size_t i = 0; i < n; ++i) {
            dst[i] = dist(rng);
            src[i] = dist(rng);
        }
        std::vector<double> via_dispatch = dst;
        std::vector<double> via_scalar = dst;
        std::vector<double> via_loop = dst;
        simd::accumulate(via_dispatch.data(), src.data(), n);
        simd::accumulate_scalar(via_scalar.data(), src.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            via_loop[i] += src[i];
        }
        EXPECT_EQ(std::memcmp(via_dispatch.data(), via_loop.data(),
                              n * sizeof(double)),
                  0)
            << "dispatched diverges at n=" << n;
        EXPECT_EQ(std::memcmp(via_scalar.data(), via_loop.data(),
                              n * sizeof(double)),
                  0)
            << "scalar diverges at n=" << n;
    }
}

} // namespace
} // namespace hcube::rt
