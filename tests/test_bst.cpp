// Tests for the Balanced Spanning Tree (paper §4.1): structure, properties
// 1-6, and the paper's own Table 5 as an exact oracle.
#include "trees/bst.hpp"

#include "hc/bits.hpp"
#include "hc/necklace.hpp"
#include "hc/rotate.hpp"
#include "trees/spanning_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

namespace hcube::trees {
namespace {

struct BstCase {
    dim_t n;
    node_t source;
};

class BstSweep : public ::testing::TestWithParam<BstCase> {};

TEST_P(BstSweep, IsAValidSpanningTree) {
    const auto [n, s] = GetParam();
    const SpanningTree tree = build_bst(n, s);
    EXPECT_NO_THROW(validate_tree(tree));
    EXPECT_EQ(tree.root, s);
}

TEST_P(BstSweep, SubtreeLabelIsBaseOfRelativeAddress) {
    const auto [n, s] = GetParam();
    const SpanningTree tree = build_bst(n, s);
    for (node_t i = 0; i < tree.node_count(); ++i) {
        if (i != s) {
            EXPECT_EQ(tree.subtree[i], hc::base(i ^ s, n)) << "node " << i;
        }
    }
}

TEST_P(BstSweep, ParentPreservesBase) {
    const auto [n, s] = GetParam();
    for (node_t i = 0; i < (node_t{1} << n); ++i) {
        if (i == s) {
            continue;
        }
        const node_t p = bst_parent(i, s, n);
        if (p != s) {
            EXPECT_EQ(hc::base(p ^ s, n), hc::base(i ^ s, n)) << "node " << i;
        }
    }
}

TEST_P(BstSweep, ParentChildrenConsistent) {
    const auto [n, s] = GetParam();
    for (node_t i = 0; i < (node_t{1} << n); ++i) {
        for (const node_t c : bst_children(i, s, n)) {
            EXPECT_EQ(bst_parent(c, s, n), i);
        }
    }
}

// Property 1: one subtree has height log N, all others log N - 1.
TEST_P(BstSweep, PropertyOneSubtreeHeights) {
    const auto [n, s] = GetParam();
    if (n < 2) {
        GTEST_SKIP() << "degenerate below n = 2";
    }
    const SpanningTree tree = build_bst(n, s);
    int tall = 0;
    for (dim_t j = 0; j < n; ++j) {
        const dim_t h = tree.subtree_height(j);
        if (h == n) {
            ++tall;
        } else {
            EXPECT_EQ(h, n - 1) << "subtree " << j;
        }
    }
    EXPECT_EQ(tall, 1);
}

// Property 2: max fanout at level i. The paper states floor((log N - i)/2);
// exhaustive measurement (n = 2..12) shows the tight bound is the *ceiling*
// ceil((log N - i)/2) — attained at every level — so we treat the floor as a
// typo (see DESIGN.md errata) and pin the measured bound, including its
// tightness at level 1.
TEST_P(BstSweep, PropertyTwoFanoutBound) {
    const auto [n, s] = GetParam();
    const SpanningTree tree = build_bst(n, s);
    std::vector<dim_t> max_fanout(static_cast<std::size_t>(n) + 1, 0);
    for (node_t i = 0; i < tree.node_count(); ++i) {
        if (i == s) {
            continue;
        }
        max_fanout[static_cast<std::size_t>(tree.level[i])] =
            std::max(max_fanout[static_cast<std::size_t>(tree.level[i])],
                     static_cast<dim_t>(tree.children[i].size()));
        EXPECT_LE(static_cast<dim_t>(tree.children[i].size()),
                  (n - tree.level[i] + 1) / 2)
            << "node " << i << " at level " << tree.level[i];
    }
    if (n >= 2) {
        EXPECT_EQ(max_fanout[1], n / 2); // tight at level 1
    }
}

// Property 3: phi(i, d) >= phi(child, d) — a node has at least as many
// subtree descendants at each distance as any of its children.
TEST_P(BstSweep, PropertyThreeDistanceProfilesDominateChildren) {
    const auto [n, s] = GetParam();
    if (n > 9) {
        GTEST_SKIP() << "O(N * n) histograms checked up to n = 9";
    }
    const SpanningTree tree = build_bst(n, s);
    // phi[i][d]: nodes at tree distance d below i (within i's subtree).
    std::vector<std::vector<std::uint32_t>> phi(
        tree.node_count(),
        std::vector<std::uint32_t>(static_cast<std::size_t>(n) + 2, 0));
    const auto order = tree.bfs_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        phi[*it][0] = 1;
        for (const node_t c : tree.children[*it]) {
            for (dim_t d = 0; d <= n; ++d) {
                phi[*it][static_cast<std::size_t>(d) + 1] +=
                    phi[c][static_cast<std::size_t>(d)];
            }
        }
    }
    for (node_t i = 0; i < tree.node_count(); ++i) {
        if (i == s) {
            continue; // the paper states the property inside subtrees
        }
        for (const node_t c : tree.children[i]) {
            for (dim_t d = 0; d <= n; ++d) {
                EXPECT_GE(phi[i][static_cast<std::size_t>(d)],
                          phi[c][static_cast<std::size_t>(d)])
                    << "node " << i << " child " << c << " distance " << d;
            }
        }
    }
}

// Property 5: subtrees P..log N - 1 contain no cyclic node of period P.
TEST_P(BstSweep, PropertyFiveCyclicNodesStayInLowSubtrees) {
    const auto [n, s] = GetParam();
    for (node_t i = 0; i < (node_t{1} << n); ++i) {
        const node_t c = i ^ s;
        if (c == 0 || !hc::is_cyclic(c, n)) {
            continue;
        }
        EXPECT_LT(hc::base(c, n), hc::period(c, n)) << "node " << i;
    }
}

// Property 6: every cyclic node is a leaf.
TEST_P(BstSweep, PropertySixCyclicNodesAreLeaves) {
    const auto [n, s] = GetParam();
    const SpanningTree tree = build_bst(n, s);
    for (node_t i = 0; i < tree.node_count(); ++i) {
        const node_t c = i ^ s;
        if (c != 0 && hc::is_cyclic(c, n)) {
            EXPECT_TRUE(tree.children[i].empty()) << "cyclic node " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    DimensionsAndSources, BstSweep,
    ::testing::Values(BstCase{2, 0}, BstCase{3, 0}, BstCase{4, 0b0110},
                      BstCase{5, 0}, BstCase{6, 0b101101}, BstCase{7, 0},
                      BstCase{8, 0b10011001}, BstCase{9, 0},
                      BstCase{10, 0b1000000001}),
    [](const auto& param_info) {
        return "n" + std::to_string(param_info.param.n) + "_s" +
               std::to_string(param_info.param.source);
    });

// Property 4: for prime log N, subtrees are isomorphic once the all-ones
// node is excluded.
TEST(Bst, PropertyFourPrimeDimensionSubtreesIsomorphic) {
    for (const dim_t n : {dim_t{5}, dim_t{7}}) {
        SpanningTree tree = build_bst(n, 0);
        // The all-ones node is cyclic, hence a leaf (property 6): detach it.
        const node_t ones = hc::low_mask(n);
        ASSERT_TRUE(tree.children[ones].empty());
        auto& siblings = tree.children[tree.parent[ones]];
        siblings.erase(std::ranges::find(siblings, ones));

        const auto roots = tree.children[0];
        ASSERT_EQ(roots.size(), static_cast<std::size_t>(n));
        for (std::size_t j = 1; j < roots.size(); ++j) {
            EXPECT_TRUE(rooted_isomorphic(tree, roots[0], roots[j]))
                << "n=" << n << " subtree " << j;
        }
    }
}

// Table 5 of the paper: maximum subtree size for n = 2..18 (19-20 are
// covered by bench_table5_bst; the values here are copied from the paper).
TEST(Bst, Table5MaxSubtreeSizes) {
    const std::map<dim_t, std::uint64_t> paper = {
        {2, 2},     {3, 3},     {4, 5},     {5, 7},    {6, 13},
        {7, 19},    {8, 35},    {9, 59},    {10, 107}, {11, 187},
        {12, 351},  {13, 631},  {14, 1181}, {15, 2191}, {16, 4115},
        {17, 7711}, {18, 14601}};
    for (const auto& [n, expected] : paper) {
        const auto census = hc::base_census(n);
        const std::uint64_t max_size = *std::ranges::max_element(census);
        EXPECT_EQ(max_size, expected) << "n=" << n;
    }
}

// Lemma 4.1: each subtree holds at least (N+2)/(2+log N) nodes, and the
// maximum approaches (N-1)/log N.
TEST(Bst, Lemma41SubtreeSizeBounds) {
    // n = 2 genuinely violates the asymptotic lower bound (min subtree size
    // is 1 < 1.5), so the sweep starts at 3.
    for (dim_t n = 3; n <= 16; ++n) {
        const auto census = hc::base_census(n);
        const double N = std::ldexp(1.0, n);
        const auto [min_it, max_it] = std::ranges::minmax_element(census);
        EXPECT_GE(static_cast<double>(*min_it), (N + 2) / (2 + n) - 1e-9)
            << "n=" << n;
        // Ratio column of Table 5: max / ((N-1)/n) stays below 1.34.
        EXPECT_LE(static_cast<double>(*max_it) / ((N - 1) / n), 1.34)
            << "n=" << n;
    }
}

// The example tree of Figure 4 (5-cube, root 0): spot-check a few parents.
TEST(Bst, Figure4SpotChecks) {
    const dim_t n = 5;
    // Node 1 = (00001): base 0, k = 0 -> parent 0.
    EXPECT_EQ(bst_parent(0b00001, 0, n), 0u);
    // Node 3 = (00011): base 0 (already minimal), k = first one right of
    // bit 0 cyclically = bit 1 -> parent complements bit 1 -> 1.
    EXPECT_EQ(bst_parent(0b00011, 0, n), 0b00001u);
    // Node 31 = (11111): cyclic, leaf, parent complements some set bit.
    const node_t p31 = bst_parent(0b11111, 0, n);
    EXPECT_EQ(hc::hamming(p31, 0b11111), 1);
    EXPECT_TRUE(bst_children(0b11111, 0, n).empty());
}

} // namespace
} // namespace hcube::trees
