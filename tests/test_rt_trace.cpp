// rt::TraceRecorder: every executed action of a clean run — one send and
// one receive per scheduled block — must land on the executing worker's
// lane with sane timestamps and schedule coordinates, identically under
// both engines, and export as well-formed chrome://tracing "X" events.
#include "rt/tracing.hpp"

#include "ft/fault_model.hpp"
#include "ft/injector.hpp"
#include "routing/schedule_export.hpp"
#include "rt/async_player.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace hcube::rt {
namespace {

using routing::BroadcastDiscipline;
using sim::PortModel;
using sim::Schedule;

Schedule small_schedule() {
    return routing::make_tree_broadcast(
        trees::build_sbt(3, 0), BroadcastDiscipline::paced, 3,
        PortModel::one_port_full_duplex);
}

/// Shared checks: one send + one recv event per scheduled block, ordered
/// stamps, in-range coordinates, every lane owned by a real worker.
void expect_complete_trace(const TraceRecorder& recorder, const Plan& plan,
                           std::uint64_t sends) {
    EXPECT_EQ(recorder.event_count(), 2 * sends);
    std::uint64_t send_events = 0;
    for (std::uint32_t w = 0; w < recorder.workers(); ++w) {
        for (const TraceEvent& e : recorder.lane(w)) {
            EXPECT_LE(e.t0_ns, e.t1_ns);
            EXPECT_LT(e.channel, plan.channel_count);
            EXPECT_LT(e.packet, plan.packet_count);
            EXPECT_LT(e.cycle, plan.cycles);
            send_events += e.kind == TraceKind::send ? 1 : 0;
        }
    }
    EXPECT_EQ(send_events, sends);
}

TEST(RtTrace, BarrierEngineRecordsEveryAction) {
    const Schedule schedule = small_schedule();
    const Plan plan = compile_plan(schedule, DataMode::move, 16, 2);
    TraceRecorder recorder(plan.workers);

    Player player(plan);
    player.set_trace(&recorder);
    const PlayStats stats = player.play();
    ASSERT_TRUE(stats.clean());
    expect_complete_trace(recorder, plan, schedule.sends.size());
}

TEST(RtTrace, AsyncEngineRecordsEveryAction) {
    const Schedule schedule = small_schedule();
    const Plan plan = compile_plan(schedule, DataMode::move, 16, 3);
    TraceRecorder recorder(plan.workers);

    AsyncPlayer player(plan);
    player.set_trace(&recorder);
    const PlayStats stats = player.play();
    ASSERT_TRUE(stats.clean());
    expect_complete_trace(recorder, plan, schedule.sends.size());
}

TEST(RtTrace, ResetClearsEventsAndDetachedRunsRecordNothing) {
    const Schedule schedule = small_schedule();
    const Plan plan = compile_plan(schedule, DataMode::move, 16, 2);
    TraceRecorder recorder(plan.workers);

    Player player(plan);
    player.set_trace(&recorder);
    ASSERT_TRUE(player.play().clean());
    EXPECT_GT(recorder.event_count(), 0u);

    recorder.reset();
    EXPECT_EQ(recorder.event_count(), 0u);

    player.set_trace(nullptr);
    ASSERT_TRUE(player.play().clean());
    EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(RtTrace, SharedEpochMergesTwoEnginesIntoOneTimeline) {
    const Schedule schedule = small_schedule();
    const Plan plan = compile_plan(schedule, DataMode::move, 16, 2);
    TraceRecorder recorder(plan.workers);

    Player barrier(plan);
    barrier.set_trace(&recorder);
    ASSERT_TRUE(barrier.play().clean());
    AsyncPlayer async(plan);
    async.set_trace(&recorder);
    ASSERT_TRUE(async.play().clean());

    EXPECT_EQ(recorder.event_count(), 4 * schedule.sends.size());
}

TEST(RtTrace, ChromeExportEmitsWellFormedCompleteEvents) {
    const Schedule schedule = small_schedule();
    const Plan plan = compile_plan(schedule, DataMode::move, 16, 2);
    TraceRecorder recorder(plan.workers);

    Player player(plan);
    player.set_trace(&recorder);
    ASSERT_TRUE(player.play().clean());

    const std::string path =
        testing::TempDir() + "hcube_trace_test.json";
    {
        JsonArrayWriter json(path);
        ASSERT_TRUE(json.ok());
        recorder.append_chrome_events(json, 7, "barrier");
        ASSERT_TRUE(json.close());
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::remove(path.c_str());

    // Array shape + the Trace Event Format fields chrome://tracing needs.
    ASSERT_GE(text.size(), 3u);
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text.substr(text.size() - 2), "]\n");
    const auto count_of = [&](const std::string& needle) {
        std::size_t count = 0;
        for (std::size_t pos = text.find(needle);
             pos != std::string::npos;
             pos = text.find(needle, pos + needle.size())) {
            ++count;
        }
        return count;
    };
    EXPECT_EQ(count_of("\"ph\": \"X\""), recorder.event_count());
    EXPECT_EQ(count_of("\"pid\": 7"), recorder.event_count());
    EXPECT_EQ(count_of("\"cat\": \"barrier\""), recorder.event_count());
    EXPECT_GT(count_of("\"ts\":"), 0u);
    EXPECT_GT(count_of("\"dur\":"), 0u);
    EXPECT_EQ(count_of("\"name\": \"send c"),
              static_cast<std::size_t>(schedule.sends.size()));
}

TEST(RtTrace, WriteChromeTraceIsAStandaloneValidFile) {
    const Schedule schedule = small_schedule();
    const Plan plan = compile_plan(schedule, DataMode::move, 16, 2);
    TraceRecorder recorder(plan.workers);

    Player player(plan);
    player.set_trace(&recorder);
    ASSERT_TRUE(player.play().clean());

    const std::string path =
        testing::TempDir() + "hcube_trace_oneshot.json";
    ASSERT_TRUE(recorder.write_chrome_trace(path, 3, "oneshot"));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::remove(path.c_str());
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text.substr(text.size() - 2), "]\n");
    EXPECT_NE(text.find("\"cat\": \"oneshot\""), std::string::npos);
}

TEST(RtTrace, AbortedRunFlushesPartialTraceToAbortPath) {
    // A killed link with abort_on_fault: play() comes back dirty without
    // ever returning control between the fault and the teardown, so the
    // recorder itself must flush the partial timeline to its abort path —
    // the post-mortem a crashed run leaves behind.
    const Schedule schedule = routing::make_tree_broadcast(
        trees::build_sbt(4, 0), BroadcastDiscipline::paced, 6,
        PortModel::one_port_full_duplex);
    const Plan plan = compile_plan(schedule, DataMode::move, 16, 2);

    ft::FaultPlan faults;
    faults.kill_link(0, 1, 0);
    ft::FaultInjector injector(faults);
    injector.arm(plan);

    TraceRecorder recorder(plan.workers);
    EXPECT_FALSE(recorder.flush_abort()); // unarmed: nothing to write
    const std::string path =
        testing::TempDir() + "hcube_trace_abort.json";
    recorder.set_abort_path(path);
    EXPECT_EQ(recorder.abort_path(), path);

    Player player(plan);
    player.set_trace(&recorder);
    player.set_detection(
        {.arrival_timeout_us = 1000, .abort_on_fault = true});
    player.set_fault_hook(&injector);
    const PlayStats stats = player.play();
    ASSERT_FALSE(stats.clean());

    // The partial trace landed at the abort path as a well-formed chrome
    // trace: fewer events than a clean run, but every one parseable.
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no abort trace at " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::remove(path.c_str());
    ASSERT_GE(text.size(), 3u);
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text.substr(text.size() - 2), "]\n");
    EXPECT_NE(text.find("\"cat\": \"aborted\""), std::string::npos);
    EXPECT_GT(recorder.event_count(), 0u);
    EXPECT_LT(recorder.event_count(), 2 * schedule.sends.size());
}

} // namespace
} // namespace hcube::rt
