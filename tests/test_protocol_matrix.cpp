// Cross-product sweep: every event protocol under every port model must
// deliver completely, and for uniform chunk sizes the event-engine time must
// equal the cycle count times (τ + B t_c) — the two simulators agree on the
// algorithms they both model.
#include "model/broadcast_model.hpp"
#include "routing/broadcast.hpp"
#include "routing/protocols.hpp"
#include "routing/scatter.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

namespace hcube::routing {
namespace {

using sim::EventParams;
using sim::PortModel;

constexpr PortModel kModels[] = {PortModel::one_port_half_duplex,
                                 PortModel::one_port_full_duplex,
                                 PortModel::all_port};

EventParams unit_params(PortModel model) {
    EventParams p;
    p.tau = 1.0;
    p.tc = 0.001;
    p.packet_capacity = 1000;
    p.overlap = 0;
    p.model = model;
    return p;
}

class ModelSweep : public ::testing::TestWithParam<PortModel> {};

TEST_P(ModelSweep, PortOrientedBroadcastDeliversEverywhere) {
    const auto model = GetParam();
    const hc::dim_t n = 5;
    const trees::SpanningTree tree = trees::build_sbt(n, 3);
    sim::EventEngine engine(n, unit_params(model));
    PortOrientedBroadcast protocol(tree, 5000, 1000);
    (void)engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
}

TEST_P(ModelSweep, PipelinedBroadcastDeliversEverywhere) {
    const auto model = GetParam();
    const hc::dim_t n = 5;
    const trees::SpanningTree tree = trees::build_sbt(n, 0);
    sim::EventEngine engine(n, unit_params(model));
    PipelinedBroadcast protocol(tree, 5000, 1000);
    (void)engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
}

TEST_P(ModelSweep, MsbtBroadcastDeliversEverywhere) {
    const auto model = GetParam();
    const hc::dim_t n = 5;
    sim::EventEngine engine(n, unit_params(model));
    MsbtBroadcastProtocol protocol(n, 7, 5000, 1000);
    (void)engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
}

TEST_P(ModelSweep, ScatterDeliversEverywhere) {
    const auto model = GetParam();
    const hc::dim_t n = 5;
    const trees::SpanningTree tree = trees::build_bst(n, 0);
    sim::EventEngine engine(n, unit_params(model));
    ScatterProtocol protocol(
        tree, cyclic_dest_order(tree, SubtreeOrder::depth_first), 800);
    (void)engine.run(protocol);
    EXPECT_EQ(protocol.delivered(), (std::size_t{1} << n) - 1);
}

TEST_P(ModelSweep, MergedScatterDeliversEverywhere) {
    const auto model = GetParam();
    const hc::dim_t n = 5;
    auto params = unit_params(model);
    params.packet_capacity = 1e9;
    const trees::SpanningTree tree = trees::build_sbt(n, 0);
    sim::EventEngine engine(n, params);
    MergedScatterProtocol protocol(tree, 100);
    (void)engine.run(protocol);
    EXPECT_EQ(protocol.delivered(), (std::size_t{1} << n) - 1);
}

TEST_P(ModelSweep, GatherCompletesEverywhere) {
    const auto model = GetParam();
    const hc::dim_t n = 5;
    const trees::SpanningTree tree = trees::build_bst(n, 0);
    sim::EventEngine engine(n, unit_params(model));
    GatherProtocol protocol(tree, 100, /*combining=*/true);
    (void)engine.run(protocol);
    EXPECT_TRUE(protocol.complete());
}

INSTANTIATE_TEST_SUITE_P(
    AllPortModels, ModelSweep, ::testing::ValuesIn(kModels),
    [](const auto& param_info) {
        switch (param_info.param) {
        case PortModel::one_port_half_duplex: return "half";
        case PortModel::one_port_full_duplex: return "full";
        case PortModel::all_port: return "all";
        }
        return "?";
    });

// Engine <-> executor equivalence: with uniform packet sizes the measured
// event time is exactly (cycle makespan) x (tau + B t_c).
TEST(EngineEquivalence, MsbtFullDuplexTimesMatchCycleCounts) {
    for (const hc::dim_t n : {hc::dim_t{3}, hc::dim_t{4}, hc::dim_t{6}}) {
        for (const sim::packet_t pps : {sim::packet_t{1}, sim::packet_t{4}}) {
            const double B = 1000;
            const double M = B * n * pps;
            const EventParams params =
                unit_params(PortModel::one_port_full_duplex);

            const auto schedule = msbt_broadcast(
                n, 0, pps, PortModel::one_port_full_duplex);
            const auto cycles =
                sim::execute_schedule(schedule,
                                      PortModel::one_port_full_duplex)
                    .makespan;

            sim::EventEngine engine(n, params);
            MsbtBroadcastProtocol protocol(n, 0, M, B);
            const double time = engine.run(protocol).completion_time;

            EXPECT_NEAR(time, cycles * (params.tau + B * params.tc), 1e-9)
                << "n=" << n << " pps=" << pps;
        }
    }
}

TEST(EngineEquivalence, SbtPortOrientedTimesMatchCycleCounts) {
    for (const hc::dim_t n : {hc::dim_t{3}, hc::dim_t{5}}) {
        for (const sim::packet_t packets :
             {sim::packet_t{1}, sim::packet_t{6}}) {
            const double B = 1000;
            const double M = B * packets;
            const EventParams params =
                unit_params(PortModel::one_port_full_duplex);
            const trees::SpanningTree tree = trees::build_sbt(n, 0);

            const auto cycles =
                sim::execute_schedule(port_oriented_broadcast(tree, packets),
                                      PortModel::one_port_full_duplex)
                    .makespan;

            sim::EventEngine engine(n, params);
            PortOrientedBroadcast protocol(tree, M, B);
            const double time = engine.run(protocol).completion_time;

            EXPECT_NEAR(time, cycles * (params.tau + B * params.tc), 1e-9)
                << "n=" << n << " packets=" << packets;
        }
    }
}

} // namespace
} // namespace hcube::routing
