// Tests for the cycle-accurate schedule executor and the half-duplex
// stretching transform (sim/cycle.hpp).
#include "sim/cycle.hpp"

#include "common/check.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hcube::sim {
namespace {

Schedule simple_schedule() {
    // 2-cube, packet 0 travels 0 -> 1 -> 3.
    Schedule s;
    s.n = 2;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 0, 1, 0}, {1, 1, 3, 0}};
    return s;
}

TEST(CycleExecutor, DeliversAlongAPath) {
    const auto stats =
        execute_schedule(simple_schedule(), PortModel::one_port_half_duplex);
    EXPECT_EQ(stats.makespan, 2u);
    EXPECT_EQ(stats.total_sends, 2u);
    EXPECT_TRUE(stats.holds(1, 0));
    EXPECT_TRUE(stats.holds(3, 0));
    EXPECT_FALSE(stats.holds(2, 0));
    EXPECT_EQ(stats.delivery_cycle[1][0], 1u);
    EXPECT_EQ(stats.delivery_cycle[3][0], 2u);
    EXPECT_EQ(stats.delivery_cycle[0][0], 0u); // initial holding
}

TEST(CycleExecutor, RejectsNonNeighborSend) {
    auto s = simple_schedule();
    s.sends[1] = {1, 1, 2, 0}; // 1 and 2 differ in two bits
    EXPECT_THROW((void)execute_schedule(s, PortModel::all_port), check_error);
}

TEST(CycleExecutor, RejectsForwardingBeforeArrival) {
    auto s = simple_schedule();
    s.sends[1].cycle = 0; // 1 forwards the packet in the cycle it arrives
    EXPECT_THROW((void)execute_schedule(s, PortModel::all_port), check_error);
}

TEST(CycleExecutor, RejectsSendOfUnheldPacket) {
    Schedule s;
    s.n = 2;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 1, 3, 0}}; // node 1 never got packet 0
    EXPECT_THROW((void)execute_schedule(s, PortModel::all_port), check_error);
}

TEST(CycleExecutor, RejectsDuplicateDelivery) {
    Schedule s;
    s.n = 2;
    s.packet_count = 1;
    s.initial_holder = {0};
    // 0 -> 1, then 3 gets it twice via 1 and via 2... first give 2 a copy.
    s.sends = {{0, 0, 1, 0}, {1, 0, 2, 0}, {2, 1, 3, 0}, {3, 2, 3, 0}};
    EXPECT_THROW((void)execute_schedule(s, PortModel::all_port), check_error);
}

TEST(CycleExecutor, RejectsTwoPacketsOnOneLinkPerCycle) {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {0, 0};
    s.sends = {{0, 0, 1, 0}, {0, 0, 1, 1}};
    EXPECT_THROW((void)execute_schedule(s, PortModel::all_port), check_error);
}

TEST(CycleExecutor, HalfDuplexForbidsSendPlusReceive) {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {0, 1};
    // Node 1 receives packet 0 and sends packet 1 in cycle 0.
    s.sends = {{0, 0, 1, 0}, {0, 1, 3, 1}};
    EXPECT_THROW((void)execute_schedule(s, PortModel::one_port_half_duplex),
                 check_error);
    // Full duplex allows exactly this.
    EXPECT_NO_THROW(
        (void)execute_schedule(s, PortModel::one_port_full_duplex));
}

TEST(CycleExecutor, FullDuplexForbidsTwoSends) {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {0, 0};
    s.sends = {{0, 0, 1, 0}, {0, 0, 2, 1}};
    EXPECT_THROW((void)execute_schedule(s, PortModel::one_port_full_duplex),
                 check_error);
    EXPECT_NO_THROW((void)execute_schedule(s, PortModel::all_port));
}

TEST(CycleExecutor, FullDuplexForbidsTwoReceives) {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {1, 2};
    s.sends = {{0, 1, 3, 0}, {0, 2, 3, 1}};
    EXPECT_THROW((void)execute_schedule(s, PortModel::one_port_full_duplex),
                 check_error);
    EXPECT_NO_THROW((void)execute_schedule(s, PortModel::all_port));
}

TEST(CycleExecutor, AllPortAllowsFullFanout) {
    Schedule s;
    s.n = 3;
    s.packet_count = 1;
    s.initial_holder = {0};
    s.sends = {{0, 0, 1, 0}, {0, 0, 2, 0}, {0, 0, 4, 0}};
    const auto stats = execute_schedule(s, PortModel::all_port);
    EXPECT_EQ(stats.makespan, 1u);
    EXPECT_EQ(stats.max_sends_in_one_cycle, 3u);
}

TEST(StretchToHalfDuplex, UnidirectionalCyclesStaySingle) {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {0, 0};
    // Cycle 0: 0 -> 1 (one transfer, trivially unidirectional).
    // Cycle 1: 0 -> 2 and 1 -> 3: no node both sends and receives.
    s.sends = {{0, 0, 1, 0}, {1, 0, 2, 1}, {1, 1, 3, 0}};
    const auto stretched = stretch_to_half_duplex(s);
    const auto stats =
        execute_schedule(stretched, PortModel::one_port_half_duplex);
    EXPECT_EQ(stats.makespan, 2u); // nothing was doubled
}

TEST(StretchToHalfDuplex, BidirectionalCyclesSplitInTwo) {
    Schedule s;
    s.n = 2;
    s.packet_count = 2;
    s.initial_holder = {0, 1};
    // Cycle 0: 0 -> 1 and 1 -> 3 (node 1 both receives and sends).
    s.sends = {{0, 0, 1, 0}, {0, 1, 3, 1}};
    const auto stretched = stretch_to_half_duplex(s);
    EXPECT_EQ(stretched.sends.size(), 2u);
    const auto stats =
        execute_schedule(stretched, PortModel::one_port_half_duplex);
    EXPECT_EQ(stats.makespan, 2u);
    EXPECT_TRUE(stats.holds(3, 1));
}

TEST(StretchToHalfDuplex, PreservesDeliveries) {
    Schedule s;
    s.n = 3;
    s.packet_count = 3;
    s.initial_holder = {0, 0, 0};
    // A small full-duplex pipeline down the path 0 -> 1 -> 3 -> 7.
    for (packet_t p = 0; p < 3; ++p) {
        s.sends.push_back({p + 0, 0, 1, p});
        s.sends.push_back({p + 1, 1, 3, p});
        s.sends.push_back({p + 2, 3, 7, p});
    }
    ASSERT_NO_THROW(
        (void)execute_schedule(s, PortModel::one_port_full_duplex));
    const auto stretched = stretch_to_half_duplex(s);
    const auto stats =
        execute_schedule(stretched, PortModel::one_port_half_duplex);
    for (packet_t p = 0; p < 3; ++p) {
        EXPECT_TRUE(stats.holds(7, p));
    }
}

} // namespace
} // namespace hcube::sim
