// Tests of the concurrent collective service (hcube::svc): the shared LRU
// cache, signature lowering, cost-model selection, the persistent Session
// (plan cache + oracle-image verification), and the Service front door
// (admission backpressure, FIFO dispatch, batching) — including 16 client
// threads submitting mixed requests concurrently, every one byte-verified.
#include "svc/service.hpp"

#include "common/check.hpp"
#include "common/lru_cache.hpp"
#include "svc/selector.hpp"
#include "svc/session.hpp"
#include "svc/signature.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

namespace hcube::svc {
namespace {

using model::CommParams;
using sim::PortModel;

/// Synthetic machine constants with τ/t_c = 10^6: the broadcast crossover
/// lands at a few million elements — big enough that every "small" test
/// message stays on the SBT side, small enough for the bisection to find.
constexpr CommParams synthetic{1.0, 1e-6};

Signature sig_of(Op op, Family family, dim_t n, node_t root,
                 sim::packet_t packets, std::uint32_t block) {
    Signature s;
    s.op = op;
    s.family = family;
    s.n = n;
    s.root = root;
    s.packets = packets;
    s.block_elems = block;
    return s;
}

SessionParams fast_session(std::uint32_t threads = 2) {
    SessionParams p;
    p.threads = threads;
    p.comm = synthetic; // skip calibration probes in unit tests
    return p;
}

// ---------------------------------------------------------------- LruCache

TEST(SvcLruCache, MissBuildThenHit) {
    LruCache<int, std::string> cache(4);
    int builds = 0;
    const auto factory = [&] {
        ++builds;
        return std::string("v");
    };
    EXPECT_EQ(cache.get_or_create(7, factory), "v");
    EXPECT_EQ(cache.get_or_create(7, factory), "v");
    EXPECT_EQ(builds, 1);
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(SvcLruCache, EvictsLeastRecentlyUsed) {
    LruCache<int, int> cache(2);
    (void)cache.get_or_create(1, [] { return 10; });
    (void)cache.get_or_create(2, [] { return 20; });
    (void)cache.get(1); // touch 1: key 2 is now the LRU entry
    (void)cache.get_or_create(3, [] { return 30; });
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(SvcLruCache, UnboundedNeverEvicts) {
    LruCache<int, int> cache(0);
    for (int k = 0; k < 64; ++k) {
        (void)cache.get_or_create(k, [k] { return k; });
    }
    EXPECT_EQ(cache.size(), 64u);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(SvcLruCache, CapacityOneKeepsOnlyTheNewestEntry) {
    LruCache<int, int> cache(1);
    EXPECT_EQ(cache.get_or_create(1, [] { return 10; }), 10);
    EXPECT_EQ(cache.get_or_create(2, [] { return 20; }), 20);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    // A hit on the sole resident entry must not evict it.
    EXPECT_EQ(cache.get(2).value_or(-1), 20);
    EXPECT_TRUE(cache.contains(2));
}

TEST(SvcLruCache, NeverEvictsTheEntryBeingInserted) {
    // One entry costlier than the whole budget: it is the `keep` entry of
    // its own insertion, so it stays resident alone (best-effort budget)
    // and evicts everything colder.
    LruCache<int, int> cache(10);
    (void)cache.get_or_create(1, [] { return 1; },
                              [](const int&) { return std::uint64_t{4}; });
    (void)cache.get_or_create(2, [] { return 2; },
                              [](const int&) { return std::uint64_t{4}; });
    const int big = cache.get_or_create(
        3, [] { return 3; }, [](const int&) { return std::uint64_t{99}; });
    EXPECT_EQ(big, 3);
    EXPECT_TRUE(cache.contains(3));
    EXPECT_FALSE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_EQ(cache.total_cost(), 99u);
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(SvcLruCache, ByteBudgetEvictsByCostNotCount) {
    // Budget 100: four cost-30 entries fit three at a time — inserting the
    // fourth evicts exactly one (the coldest), not down to a count.
    LruCache<int, int> cache(100);
    const auto cost = [](const int&) { return std::uint64_t{30}; };
    for (int k = 0; k < 4; ++k) {
        (void)cache.get_or_create(k, [k] { return k; }, cost);
    }
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.total_cost(), 90u);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_EQ(cache.budget(), 100u);
}

TEST(SvcLruCache, UpdateCostRepricesAndEvictsColderEntries) {
    LruCache<int, int> cache(100);
    const auto cost = [](const int&) { return std::uint64_t{20}; };
    for (int k = 0; k < 4; ++k) {
        (void)cache.get_or_create(k, [k] { return k; }, cost);
    }
    EXPECT_EQ(cache.total_cost(), 80u);
    // Re-pricing the hottest entry to 70 pushes the total to 130: the two
    // coldest entries go, the re-priced entry itself is protected.
    cache.update_cost(3, 70);
    EXPECT_TRUE(cache.contains(3));
    EXPECT_FALSE(cache.contains(0));
    EXPECT_FALSE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    EXPECT_EQ(cache.total_cost(), 90u);
    cache.update_cost(42, 1); // unknown key: no-op
    EXPECT_EQ(cache.total_cost(), 90u);
}

TEST(SvcLruCache, ClearResetsResidencyAndCost) {
    LruCache<int, int> cache(8);
    (void)cache.get_or_create(1, [] { return 1; });
    (void)cache.get_or_create(2, [] { return 2; });
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.total_cost(), 0u);
    // The recency list is empty too: fresh inserts and evictions work.
    for (int k = 0; k < 12; ++k) {
        (void)cache.get_or_create(k, [k] { return k; });
    }
    EXPECT_EQ(cache.size(), 8u);
}

TEST(SvcLruCache, EraseIfRemovesMatchesAndRefundsTheirCost) {
    LruCache<int, int> cache(100);
    const auto cost = [](const int& v) {
        return static_cast<std::uint64_t>(v);
    };
    for (int k = 1; k <= 4; ++k) {
        (void)cache.get_or_create(k, [k] { return 10 * k; }, cost);
    }
    EXPECT_EQ(cache.total_cost(), 100u);
    const std::size_t erased = cache.erase_if(
        [](const int& key, const int&) { return key % 2 == 0; });
    EXPECT_EQ(erased, 2u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.total_cost(), 40u); // 10 + 30 refunded exactly
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_FALSE(cache.contains(4));
    EXPECT_EQ(cache.stats().evictions, 2u);
    // The predicate sees the value too.
    EXPECT_EQ(cache.erase_if(
                  [](const int&, const int& value) { return value >= 30; }),
              1u);
    EXPECT_EQ(cache.total_cost(), 10u);
}

TEST(SvcLruCache, EraseIfKeepsTheRecencyListCoherent) {
    // Mass-erase the interior of the recency list, then drive the cache to
    // capacity: survivors must still evict in strict LRU order — a broken
    // unlink would corrupt the list and evict the wrong entries (or crash).
    LruCache<int, int> cache(4);
    for (int k = 0; k < 4; ++k) {
        (void)cache.get_or_create(k, [k] { return k; });
    }
    (void)cache.get(0); // recency (cold to hot): 1, 2, 3, 0
    EXPECT_EQ(cache.erase_if(
                  [](const int& key, const int&) { return key == 2; }),
              1u);
    EXPECT_EQ(cache.size(), 3u);
    // Fill back up and overflow by one: the coldest survivor (1) goes.
    (void)cache.get_or_create(5, [] { return 5; });
    (void)cache.get_or_create(6, [] { return 6; });
    EXPECT_FALSE(cache.contains(1));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_TRUE(cache.contains(0));
    EXPECT_TRUE(cache.contains(5));
    EXPECT_TRUE(cache.contains(6));

    // Erasing everything leaves a healthy empty list.
    EXPECT_EQ(cache.erase_if([](const int&, const int&) { return true; }),
              4u);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.total_cost(), 0u);
    for (int k = 10; k < 16; ++k) {
        (void)cache.get_or_create(k, [k] { return k; });
    }
    EXPECT_EQ(cache.size(), 4u);
}

TEST(SvcLruCache, ConcurrentGetOrCreateConverges) {
    LruCache<int, int> cache(8);
    std::atomic<int> builds{0};
    std::vector<std::thread> threads;
    std::vector<int> seen(8, -1);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            seen[static_cast<std::size_t>(t)] = cache.get_or_create(5, [&] {
                builds.fetch_add(1);
                return 55;
            });
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    for (const int v : seen) {
        EXPECT_EQ(v, 55);
    }
    EXPECT_GE(builds.load(), 1); // raced duplicate builds are discarded
}

// --------------------------------------------------------------- Signature

TEST(SvcSignature, MsbtBroadcastRequiresDivisiblePackets) {
    EXPECT_NO_THROW(
        (void)make_schedule(sig_of(Op::broadcast, Family::msbt, 3, 0, 6, 8)));
    EXPECT_THROW(
        (void)make_schedule(sig_of(Op::broadcast, Family::msbt, 3, 0, 7, 8)),
        check_error);
}

TEST(SvcSignature, RejectsFamilyOpMismatches) {
    EXPECT_THROW(
        (void)make_schedule(sig_of(Op::broadcast, Family::bst, 3, 0, 4, 8)),
        check_error);
    EXPECT_THROW(
        (void)make_schedule(sig_of(Op::scatter, Family::msbt, 3, 0, 2, 8)),
        check_error);
    EXPECT_THROW(
        (void)make_schedule(sig_of(Op::reduce, Family::bst, 3, 0, 2, 8)),
        check_error);
}

TEST(SvcSignature, ReduceLowersToCombineModeWithForwardFeasibility) {
    const GeneratedSchedule gen =
        make_schedule(sig_of(Op::reduce, Family::sbt, 3, 2, 2, 8));
    EXPECT_EQ(gen.mode, rt::DataMode::combine);
    EXPECT_EQ(gen.exec.sends.size(), gen.feasibility.sends.size());
    // Every packet starts at the reduction root in the combining schedule.
    for (const node_t holder : gen.exec.initial_holder) {
        EXPECT_EQ(holder, 2u);
    }
}

// ---------------------------------------------------------------- Selector

TEST(SvcSelector, SbtBelowCrossoverMsbtAbove) {
    const AlgorithmSelector selector(synthetic);
    const PortModel model = PortModel::one_port_full_duplex;
    for (const dim_t n : {3, 4, 6}) {
        const std::uint64_t cross = selector.broadcast_crossover(n, model);
        ASSERT_GT(cross, 1u);
        const Selection below =
            selector.select(Op::broadcast, n, cross - 1, model);
        const Selection above =
            selector.select(Op::broadcast, n, cross, model);
        EXPECT_EQ(below.family, Family::sbt) << "n=" << n;
        EXPECT_EQ(above.family, Family::msbt) << "n=" << n;
        EXPECT_LT(below.predicted_seconds, below.rejected_seconds);
        EXPECT_LT(above.predicted_seconds, above.rejected_seconds);
    }
}

TEST(SvcSelector, MsbtPacketizationIsDivisibleAndCovers) {
    const AlgorithmSelector selector(synthetic);
    const PortModel model = PortModel::one_port_full_duplex;
    const dim_t n = 4;
    const std::uint64_t big = selector.broadcast_crossover(n, model) * 4;
    const Selection sel = selector.select(Op::broadcast, n, big, model);
    ASSERT_EQ(sel.family, Family::msbt);
    EXPECT_EQ(sel.packets % static_cast<sim::packet_t>(n), 0u);
    EXPECT_GE(std::uint64_t{sel.packets} * sel.block_elems, big);
}

TEST(SvcSelector, SingleVsPipelinedPacketRegimes) {
    const AlgorithmSelector selector(synthetic);
    const PortModel model = PortModel::one_port_full_duplex;
    // One-packet regime: the SBT sends the whole message once per
    // dimension (B_opt = M, a single packet).
    const Selection small = selector.select(Op::broadcast, 4, 100, model);
    EXPECT_EQ(small.family, Family::sbt);
    EXPECT_EQ(small.packets, 1u);
    EXPECT_EQ(small.block_elems, 100u);
    // Far above the crossover the MSBT pipelines many packets.
    const std::uint64_t big =
        selector.broadcast_crossover(4, model) * 16;
    const Selection large = selector.select(Op::broadcast, 4, big, model);
    EXPECT_EQ(large.family, Family::msbt);
    EXPECT_GT(large.packets, 1u);
}

TEST(SvcSelector, ScatterPrefersBalancedTree) {
    const AlgorithmSelector selector(synthetic);
    const Selection sel = selector.select(
        Op::scatter, 4, 64, PortModel::one_port_full_duplex);
    EXPECT_EQ(sel.family, Family::bst);
    EXPECT_EQ(sel.packets, 1u);
}

// ----------------------------------------------------------------- Session

TEST(SvcSession, ExecutesEveryOpVerified) {
    Session session(3, fast_session());
    const std::vector<Signature> sigs = {
        sig_of(Op::broadcast, Family::sbt, 3, 0, 4, 16),
        sig_of(Op::broadcast, Family::msbt, 3, 1, 6, 16),
        sig_of(Op::scatter, Family::bst, 3, 0, 2, 16),
        sig_of(Op::gather, Family::sbt, 3, 0, 2, 16),
        sig_of(Op::reduce, Family::sbt, 3, 0, 2, 16),
        sig_of(Op::allgather, Family::sbt, 3, 0, 1, 16),
        sig_of(Op::alltoall, Family::sbt, 3, 0, 1, 16),
    };
    for (const Signature& sig : sigs) {
        const ExecStats stats = session.execute(sig);
        EXPECT_TRUE(stats.verified) << sig.to_string();
        EXPECT_FALSE(stats.cache_hit) << sig.to_string();
        EXPECT_TRUE(stats.oracle_checked) << sig.to_string();
        EXPECT_GT(stats.blocks_delivered, 0u) << sig.to_string();
    }
    EXPECT_EQ(session.cached_plans(), sigs.size());
}

TEST(SvcSession, VerifyFirstChecksOracleOncePerSignature) {
    Session session(3, fast_session());
    const Signature sig = sig_of(Op::broadcast, Family::sbt, 3, 0, 4, 16);
    const ExecStats first = session.execute(sig);
    EXPECT_TRUE(first.verified);
    EXPECT_TRUE(first.oracle_checked);
    EXPECT_FALSE(first.cache_hit);
    for (int i = 0; i < 3; ++i) {
        const ExecStats repeat = session.execute(sig);
        EXPECT_TRUE(repeat.verified);
        EXPECT_FALSE(repeat.oracle_checked); // steady state: image memcmp
        EXPECT_TRUE(repeat.cache_hit);
    }
    const hcube::CacheStats stats = session.cache_stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 3u);
}

TEST(SvcSession, VerifyAlwaysRerunsOracleEveryTime) {
    SessionParams params = fast_session();
    params.verify = rt::Verify::always;
    Session session(3, params);
    const Signature sig = sig_of(Op::reduce, Family::sbt, 3, 0, 2, 16);
    for (int i = 0; i < 3; ++i) {
        const ExecStats stats = session.execute(sig);
        EXPECT_TRUE(stats.verified);
        EXPECT_TRUE(stats.oracle_checked);
    }
}

TEST(SvcSession, VerifyNeverStillByteChecksHoldings) {
    SessionParams params = fast_session();
    params.verify = rt::Verify::never;
    Session session(3, params);
    const Signature sig = sig_of(Op::broadcast, Family::sbt, 3, 0, 4, 16);
    for (int i = 0; i < 2; ++i) {
        const ExecStats stats = session.execute(sig);
        EXPECT_TRUE(stats.verified);
        EXPECT_FALSE(stats.oracle_checked);
    }
}

TEST(SvcSession, BarrierEngineMatchesMakespanInSteadyState) {
    SessionParams params = fast_session();
    params.engine = rt::Engine::barrier;
    Session session(3, params);
    const Signature sig = sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 16);
    for (int i = 0; i < 3; ++i) {
        const ExecStats stats = session.execute(sig);
        EXPECT_TRUE(stats.verified);
        EXPECT_EQ(stats.rt_cycles, stats.sim_makespan);
    }
}

TEST(SvcSession, CacheEvictionRecompiles) {
    SessionParams params = fast_session();
    params.plan_cache_capacity = 2;
    Session session(3, params);
    const Signature a = sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 16);
    const Signature b = sig_of(Op::broadcast, Family::sbt, 3, 1, 2, 16);
    const Signature c = sig_of(Op::broadcast, Family::sbt, 3, 2, 2, 16);
    EXPECT_FALSE(session.execute(a).cache_hit);
    EXPECT_FALSE(session.execute(b).cache_hit);
    EXPECT_TRUE(session.execute(b).cache_hit);
    EXPECT_FALSE(session.execute(c).cache_hit); // evicts a (the LRU entry)
    EXPECT_EQ(session.cached_plans(), 2u);
    EXPECT_EQ(session.cache_stats().evictions, 1u);
    const ExecStats again = session.execute(a); // recompiled, re-verified
    EXPECT_FALSE(again.cache_hit);
    EXPECT_TRUE(again.oracle_checked);
    EXPECT_TRUE(again.verified);
}

TEST(SvcSession, PlanSignatureFollowsSelector) {
    Session session(4, fast_session());
    const Signature small = session.plan_signature(Op::broadcast, 0, 128);
    EXPECT_EQ(small.family, Family::sbt);
    EXPECT_EQ(small.n, 4);
    const std::uint64_t big =
        session.selector().broadcast_crossover(
            4, PortModel::one_port_full_duplex) *
        4;
    const Signature large = session.plan_signature(Op::broadcast, 0, big);
    EXPECT_EQ(large.family, Family::msbt);
    EXPECT_TRUE(session.execute(small).verified);
}

TEST(SvcSession, RejectsWrongDimension) {
    Session session(3, fast_session());
    EXPECT_THROW((void)session.execute(
                     sig_of(Op::broadcast, Family::sbt, 4, 0, 2, 16)),
                 check_error);
    EXPECT_THROW((void)session.execute(
                     sig_of(Op::broadcast, Family::sbt, 0, 0, 2, 16)),
                 check_error);
}

TEST(SvcSession, ServesMixedSubCubeDimensions) {
    // One session, one byte budget, signatures from 1-cube to 4-cube: the
    // residency story the byte-budgeted cache exists for.
    Session session(4, fast_session(4));
    for (dim_t n = 1; n <= 4; ++n) {
        const ExecStats stats = session.execute(
            sig_of(Op::broadcast, Family::sbt, n, 0, 2, 16));
        EXPECT_TRUE(stats.verified) << "n=" << int{n};
        EXPECT_GT(stats.plan_resident_bytes, 0u) << "n=" << int{n};
    }
    EXPECT_EQ(session.cached_plans(), 4u);
}

TEST(SvcSession, ReportsExactResidentBytes) {
    Session session(3, fast_session());
    const Signature a = sig_of(Op::broadcast, Family::sbt, 3, 0, 4, 16);
    const Signature b = sig_of(Op::reduce, Family::sbt, 3, 0, 2, 16);
    const ExecStats sa = session.execute(a);
    const ExecStats sb = session.execute(b);
    EXPECT_GT(sa.plan_resident_bytes, 0u);
    EXPECT_GT(sb.plan_resident_bytes, 0u);
    // Entry-count mode still tracks resident cost (one unit per entry).
    EXPECT_EQ(session.cache_resident_bytes(), 2u);
    // A hit reports the same entry bytes as the compile that built it.
    const ExecStats repeat = session.execute(a);
    EXPECT_TRUE(repeat.cache_hit);
    EXPECT_EQ(repeat.plan_resident_bytes, sa.plan_resident_bytes);
}

TEST(SvcSession, ByteBudgetEvictsColdPlans) {
    // Measure one entry, then budget the next session at 1.5 entries: two
    // same-shape signatures can never be resident together.
    const Signature a = sig_of(Op::broadcast, Family::sbt, 3, 0, 4, 16);
    const Signature b = sig_of(Op::broadcast, Family::sbt, 3, 1, 4, 16);
    std::uint64_t entry_bytes = 0;
    {
        SessionParams params = fast_session();
        params.plan_cache_bytes = 64u << 20;
        Session probe(3, params);
        entry_bytes = probe.execute(a).plan_resident_bytes;
        ASSERT_GT(entry_bytes, 0u);
        EXPECT_EQ(probe.cache_resident_bytes(), entry_bytes);
    }
    SessionParams params = fast_session();
    params.plan_cache_bytes = entry_bytes + entry_bytes / 2;
    Session session(3, params);
    EXPECT_FALSE(session.execute(a).cache_hit);
    EXPECT_FALSE(session.execute(b).cache_hit); // evicts a
    EXPECT_EQ(session.cached_plans(), 1u);
    EXPECT_EQ(session.cache_stats().evictions, 1u);
    EXPECT_LE(session.cache_resident_bytes(), params.plan_cache_bytes);
    const ExecStats again = session.execute(a); // recompiled, re-verified
    EXPECT_FALSE(again.cache_hit);
    EXPECT_TRUE(again.oracle_checked);
    EXPECT_TRUE(again.verified);
}

TEST(SvcSession, ByteBudgetHoldsManySmallPlans) {
    // A generous budget keeps a whole mixed population resident: repeats
    // are all steady-state hits and the charged bytes stay within budget.
    SessionParams params = fast_session(4);
    params.plan_cache_bytes = 64u << 20;
    Session session(5, params);
    std::vector<Signature> sigs;
    for (dim_t n = 2; n <= 5; ++n) {
        for (node_t root = 0; root < 4; ++root) {
            sigs.push_back(sig_of(Op::broadcast, Family::sbt, n,
                                  root % (node_t{1} << n), 2, 16));
        }
    }
    for (const Signature& sig : sigs) {
        EXPECT_TRUE(session.execute(sig).verified);
    }
    for (const Signature& sig : sigs) {
        const ExecStats stats = session.execute(sig);
        EXPECT_TRUE(stats.cache_hit) << sig.to_string();
        EXPECT_TRUE(stats.verified) << sig.to_string();
    }
    EXPECT_EQ(session.cache_stats().evictions, 0u);
    EXPECT_LE(session.cache_resident_bytes(), params.plan_cache_bytes);
    EXPECT_GT(session.cache_resident_bytes(), 0u);
}

TEST(SvcSession, WideLayoutSessionStaysVerified) {
    // The HCUBE_PLAN_COMPACT=0 equivalent, selected through params: the
    // wide reference encoding must verify identically through the full
    // session path (compile, cache, steady-state byte checks).
    SessionParams params = fast_session();
    params.plan_layout = rt::PlanLayout::wide;
    Session session(3, params);
    const Signature sig = sig_of(Op::reduce, Family::sbt, 3, 0, 2, 16);
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(session.execute(sig).verified);
    }
}

// ----------------------------------------------------------------- Service

ServiceParams fast_service(std::uint32_t threads = 2) {
    ServiceParams p;
    p.session = fast_session(threads);
    return p;
}

TEST(SvcService, RunExecutesAndVerifies) {
    Service service(3, fast_service());
    const Response r =
        service.run(sig_of(Op::broadcast, Family::sbt, 3, 0, 4, 16));
    EXPECT_EQ(r.status, Status::ok);
    EXPECT_TRUE(r.stats.verified);
    EXPECT_FALSE(r.batched);
}

TEST(SvcService, InvalidSignatureFailsWithError) {
    Service service(3, fast_service());
    const Response r =
        service.run(sig_of(Op::broadcast, Family::msbt, 3, 0, 7, 16));
    EXPECT_EQ(r.status, Status::failed);
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(service.counters().failed, 1u);
}

TEST(SvcService, RejectPolicyBouncesWhenQueueFull) {
    ServiceParams params = fast_service();
    params.queue_depth = 2;
    params.admission = Admission::reject;
    Service service(3, params);
    service.pause(); // queue fills deterministically
    const Signature sig = sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 16);
    std::vector<std::future<Response>> admitted;
    admitted.push_back(service.submit(sig));
    admitted.push_back(service.submit(sig));
    std::future<Response> bounced = service.submit(sig);
    ASSERT_EQ(bounced.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(bounced.get().status, Status::rejected);
    EXPECT_EQ(service.counters().rejected, 1u);
    service.resume();
    for (auto& f : admitted) {
        const Response r = f.get();
        EXPECT_EQ(r.status, Status::ok);
        EXPECT_TRUE(r.stats.verified);
    }
}

TEST(SvcService, BlockPolicyWaitsForASlot) {
    ServiceParams params = fast_service();
    params.queue_depth = 1;
    params.admission = Admission::block;
    Service service(3, params);
    service.pause();
    const Signature a = sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 16);
    const Signature b = sig_of(Op::broadcast, Family::sbt, 3, 1, 2, 16);
    std::future<Response> first = service.submit(a); // fills the queue
    std::atomic<bool> admitted{false};
    std::thread blocked([&] {
        std::future<Response> second = service.submit(b); // blocks
        admitted.store(true);
        EXPECT_EQ(second.get().status, Status::ok);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(admitted.load()); // still backpressured
    service.resume();              // dispatcher drains; the slot frees
    blocked.join();
    EXPECT_TRUE(admitted.load());
    EXPECT_EQ(first.get().status, Status::ok);
}

TEST(SvcService, BatchingCoalescesEqualSignatures) {
    ServiceParams params = fast_service();
    params.queue_depth = 16;
    Service service(3, params);
    service.pause();
    const Signature hot = sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 16);
    const Signature cold = sig_of(Op::scatter, Family::bst, 3, 0, 2, 16);
    std::vector<std::future<Response>> hot_futures;
    for (int i = 0; i < 4; ++i) {
        hot_futures.push_back(service.submit(hot));
    }
    std::future<Response> cold_future = service.submit(cold);
    service.resume();
    service.drain();
    int riders = 0;
    for (auto& f : hot_futures) {
        const Response r = f.get();
        EXPECT_EQ(r.status, Status::ok);
        EXPECT_TRUE(r.stats.verified);
        riders += r.batched ? 1 : 0;
    }
    EXPECT_EQ(riders, 3); // head executed, three rode along
    EXPECT_EQ(cold_future.get().status, Status::ok);
    const Service::Counters counters = service.counters();
    EXPECT_EQ(counters.submitted, 5u);
    EXPECT_EQ(counters.batched, 3u);
    EXPECT_EQ(counters.executed, 2u);
}

TEST(SvcService, DrainOutlivesQueuedWork) {
    Service service(3, fast_service());
    const Signature sig = sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 16);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(service.submit(sig));
    }
    service.drain();
    for (auto& f : futures) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_EQ(f.get().status, Status::ok);
    }
}

// ------------------------------------------------------------- Concurrency

TEST(SvcConcurrent, SixteenClientsMixedOpsAllVerified) {
    ServiceParams params = fast_service(4);
    params.queue_depth = 256;
    Service service(3, params);
    const std::vector<Signature> mix = {
        sig_of(Op::broadcast, Family::sbt, 3, 0, 4, 16),
        sig_of(Op::broadcast, Family::msbt, 3, 0, 6, 16),
        sig_of(Op::scatter, Family::bst, 3, 0, 2, 16),
        sig_of(Op::gather, Family::sbt, 3, 0, 2, 16),
        sig_of(Op::reduce, Family::sbt, 3, 0, 2, 16),
        sig_of(Op::allgather, Family::sbt, 3, 0, 1, 16),
    };
    constexpr int kClients = 16;
    constexpr int kPerClient = 6;
    std::atomic<int> verified{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < kPerClient; ++i) {
                const Signature& sig =
                    mix[static_cast<std::size_t>(c + i) % mix.size()];
                const Response r = service.run(sig);
                if (r.status == Status::ok && r.stats.verified) {
                    verified.fetch_add(1);
                }
            }
        });
    }
    for (auto& t : clients) {
        t.join();
    }
    EXPECT_EQ(verified.load(), kClients * kPerClient);
    // Six distinct signatures compiled once each; everything else hit the
    // cache (or rode along on a batched execution).
    EXPECT_EQ(service.session().cached_plans(), mix.size());
    const hcube::CacheStats stats = service.session().cache_stats();
    EXPECT_EQ(stats.misses, mix.size());
}

TEST(SvcConcurrent, ParallelSessionsShareNothing) {
    // Two sessions on different dimensions running concurrently exercise
    // the per-session pool isolation.
    std::atomic<bool> ok{true};
    std::thread t1([&] {
        Session s(3, fast_session());
        for (int i = 0; i < 4; ++i) {
            if (!s.execute(sig_of(Op::broadcast, Family::sbt, 3, 0, 2, 16))
                     .verified) {
                ok.store(false);
            }
        }
    });
    std::thread t2([&] {
        Session s(4, fast_session());
        for (int i = 0; i < 4; ++i) {
            if (!s.execute(sig_of(Op::alltoall, Family::sbt, 4, 0, 1, 16))
                     .verified) {
                ok.store(false);
            }
        }
    });
    t1.join();
    t2.join();
    EXPECT_TRUE(ok.load());
}

} // namespace
} // namespace hcube::svc
