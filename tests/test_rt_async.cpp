// Differential tests of the dependency-driven AsyncPlayer against the
// two-barrier-per-cycle Player: for every schedule family the repo can
// export, at every cube size n = 3..8, both engines must finish clean
// (zero channel faults, zero checksum failures, one delivery per
// scheduled send) and leave byte-identical final memory — including
// combine-mode reduction, where the plan's slot-ordering edges pin the
// floating-point accumulation order to the barrier oracle's.
//
// These suites are named Rt* so the tsan CI job (ctest -R '^Rt') runs
// them under ThreadSanitizer, which is where the work-stealing engine's
// synchronization actually gets exercised.
#include "rt/async_player.hpp"

#include "common/check.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp"
#include "rt/threads.hpp"
#include "routing/schedule_export.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace hcube::rt {
namespace {

using routing::BroadcastDiscipline;
using routing::ScatterPolicy;
using sim::packet_t;
using sim::PortModel;
using sim::Schedule;

constexpr std::size_t kBlock = 8;

/// Runs `schedule` through both engines and asserts clean stats plus a
/// byte-identical final memory image, slot by slot.
void expect_engines_agree(const Schedule& schedule, DataMode mode,
                          std::uint32_t threads,
                          const std::string& label) {
    SCOPED_TRACE(label + " threads=" + std::to_string(threads));
    const Plan plan = compile_plan(schedule, mode, kBlock, threads);

    Player barrier_player(plan);
    const PlayStats ref = barrier_player.play();
    EXPECT_TRUE(ref.clean());
    EXPECT_EQ(ref.channel_faults, 0u);
    EXPECT_EQ(ref.blocks_delivered, schedule.sends.size());

    AsyncPlayer async_player(plan);
    const PlayStats dut = async_player.play();
    EXPECT_TRUE(dut.clean());
    EXPECT_EQ(dut.channel_faults, 0u);
    EXPECT_EQ(dut.blocks_delivered, schedule.sends.size());

    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const auto a =
            barrier_player.block(plan.slot_node[s], plan.slot_packet[s]);
        const auto b =
            async_player.block(plan.slot_node[s], plan.slot_packet[s]);
        ASSERT_EQ(a.size(), b.size());
        ASSERT_EQ(std::memcmp(a.data(), b.data(),
                              a.size() * sizeof(double)),
                  0)
            << "final memory diverges at slot " << s << " (node "
            << plan.slot_node[s] << ", packet " << plan.slot_packet[s]
            << ")";
    }
}

TEST(RtAsyncVsBarrier, SbtPortOrientedBroadcast) {
    for (hc::dim_t n = 3; n <= 8; ++n) {
        expect_engines_agree(
            routing::make_tree_broadcast(
                trees::build_sbt(n, 0),
                BroadcastDiscipline::port_oriented, 4,
                PortModel::one_port_full_duplex),
            DataMode::move, 2, "sbt_bcast n=" + std::to_string(n));
    }
}

TEST(RtAsyncVsBarrier, MsbtBroadcast) {
    for (hc::dim_t n = 3; n <= 8; ++n) {
        // The MSBT needs P divisible by n (one sub-stream per ERSBT).
        expect_engines_agree(
            routing::make_msbt_broadcast(n, 0,
                                         static_cast<packet_t>(n) * 2,
                                         PortModel::one_port_full_duplex),
            DataMode::move, 2, "msbt_bcast n=" + std::to_string(n));
    }
}

TEST(RtAsyncVsBarrier, SbtDescendingScatter) {
    for (hc::dim_t n = 3; n <= 8; ++n) {
        expect_engines_agree(
            routing::make_tree_scatter(trees::build_sbt(n, 0),
                                       ScatterPolicy::descending, 2,
                                       PortModel::one_port_full_duplex),
            DataMode::move, 2, "sbt_scatter n=" + std::to_string(n));
    }
}

TEST(RtAsyncVsBarrier, BstCyclicScatter) {
    for (hc::dim_t n = 3; n <= 8; ++n) {
        expect_engines_agree(
            routing::make_tree_scatter(trees::build_bst(n, 0),
                                       ScatterPolicy::cyclic, 2,
                                       PortModel::one_port_full_duplex),
            DataMode::move, 2, "bst_scatter n=" + std::to_string(n));
    }
}

TEST(RtAsyncVsBarrier, AllPortScatter) {
    for (hc::dim_t n = 3; n <= 8; ++n) {
        expect_engines_agree(
            routing::make_tree_scatter(trees::build_sbt(n, 0),
                                       ScatterPolicy::per_port, 2,
                                       PortModel::all_port),
            DataMode::move, 2, "per_port_scatter n=" + std::to_string(n));
    }
}

TEST(RtAsyncVsBarrier, SbtAndBstGather) {
    for (hc::dim_t n = 3; n <= 8; ++n) {
        expect_engines_agree(
            routing::make_tree_gather(trees::build_sbt(n, 0),
                                      ScatterPolicy::descending, 2,
                                      PortModel::one_port_full_duplex),
            DataMode::move, 2, "sbt_gather n=" + std::to_string(n));
        expect_engines_agree(
            routing::make_tree_gather(trees::build_bst(n, 0),
                                      ScatterPolicy::cyclic, 2,
                                      PortModel::one_port_full_duplex),
            DataMode::move, 2, "bst_gather n=" + std::to_string(n));
    }
}

TEST(RtAsyncVsBarrier, ReduceCombinesInChannelSequenceOrder) {
    for (hc::dim_t n = 3; n <= 8; ++n) {
        const Schedule forward = routing::make_tree_broadcast(
            trees::build_sbt(n, 0), BroadcastDiscipline::port_oriented, 3,
            PortModel::one_port_full_duplex);
        expect_engines_agree(
            routing::reverse_broadcast_for_reduce(forward, 0),
            DataMode::combine, 2, "reduce n=" + std::to_string(n));
    }
}

/// Recursive-doubling allreduce: in cycle d every node exchanges its
/// running partial for packet 0 with its neighbor across dimension d.
/// Listing nodes in ascending order makes the higher node of each pair
/// lower its receive before its same-cycle send, so the engines only
/// agree if the plan's send-side ordering edge pins the send to the
/// slot's pre-accumulation value (the barrier oracle's sends-first rule).
Schedule recursive_doubling_allreduce(hc::dim_t n) {
    Schedule s;
    s.n = n;
    s.packet_count = 1;
    s.initial_holder = {0};
    const hc::node_t count = hc::node_t{1} << n;
    for (std::uint32_t d = 0; d < static_cast<std::uint32_t>(n); ++d) {
        for (hc::node_t v = 0; v < count; ++v) {
            s.sends.push_back(
                {d, v, static_cast<hc::node_t>(v ^ (hc::node_t{1} << d)),
                 0});
        }
    }
    return s;
}

TEST(RtAsyncVsBarrier, AllreduceSameCycleBidirectionalExchange) {
    for (hc::dim_t n = 1; n <= 8; ++n) {
        const std::uint32_t threads = n >= 2 ? 4u : 2u;
        expect_engines_agree(recursive_doubling_allreduce(n),
                             DataMode::combine, threads,
                             "allreduce n=" + std::to_string(n));
    }
}

TEST(RtAsyncVsBarrier, AllgatherAndAlltoall) {
    for (hc::dim_t n = 3; n <= 8; ++n) {
        expect_engines_agree(routing::make_allgather_schedule(n),
                             DataMode::move, 2,
                             "allgather n=" + std::to_string(n));
        expect_engines_agree(routing::make_alltoall_schedule(n, 1),
                             DataMode::move, 2,
                             "alltoall n=" + std::to_string(n));
    }
}

TEST(RtAsyncVsBarrier, OddWorkerCountsAndSerialPath) {
    // One worker takes the serial fast path; three exercises uneven node
    // ownership (2^5 nodes over 3 workers) and therefore stealing.
    const Schedule schedule = routing::make_tree_scatter(
        trees::build_sbt(5, 0), ScatterPolicy::descending, 2,
        PortModel::one_port_full_duplex);
    for (const std::uint32_t threads : {1u, 3u}) {
        expect_engines_agree(schedule, DataMode::move, threads,
                             "odd_workers");
    }
}

TEST(RtAsyncVsBarrier, AsyncPlayerIsReusableAcrossRuns) {
    const Schedule schedule = routing::make_msbt_broadcast(
        4, 0, 8, PortModel::one_port_full_duplex);
    const Plan plan = compile_plan(schedule, DataMode::move, kBlock, 2);
    AsyncPlayer player(plan);
    const PlayStats first = player.play();
    const PlayStats second = player.play();
    EXPECT_TRUE(first.clean());
    EXPECT_TRUE(second.clean());
    EXPECT_EQ(first.blocks_delivered, second.blocks_delivered);
    EXPECT_EQ(second.blocks_delivered, schedule.sends.size());
}

TEST(RtAsyncVsBarrier, RejectsRingShallowerThanPlanDepth) {
    const Schedule schedule = routing::make_msbt_broadcast(
        3, 0, 6, PortModel::one_port_full_duplex);
    const Plan plan =
        compile_plan(schedule, DataMode::move, kBlock, 2, /*depth=*/4);
    EXPECT_THROW(AsyncPlayer(plan, 2), check_error);
    AsyncPlayer ok(plan, 4);
    EXPECT_TRUE(ok.play().clean());
}

TEST(RtThreads, AutoPickDefaultsToTwoWhenHardwareUnknown) {
    EXPECT_EQ(pick_worker_threads(3, 0, 0), 2u);
    EXPECT_EQ(pick_worker_threads(3, 0, 1), 2u);
}

TEST(RtThreads, AutoPickUsesHardwareClampedToCubeSize) {
    EXPECT_EQ(pick_worker_threads(3, 0, 16), 8u);  // clamp to 2^3
    EXPECT_EQ(pick_worker_threads(5, 0, 16), 16u); // fits under 2^5
}

TEST(RtThreads, ExplicitRequestIsHonoredUpToCubeSize) {
    EXPECT_EQ(pick_worker_threads(4, 7, 64), 7u);
    EXPECT_EQ(pick_worker_threads(2, 9, 64), 4u); // clamp to 2^2
    EXPECT_EQ(pick_worker_threads(4, 1, 64), 1u);
}

} // namespace
} // namespace hcube::rt
