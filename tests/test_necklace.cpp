// Unit tests for hc/necklace.hpp — generator sets and the BST base function.
#include "hc/necklace.hpp"

#include "hc/bits.hpp"
#include "hc/rotate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <cmath>
#include <map>
#include <set>

namespace hcube::hc {
namespace {

TEST(Necklace, CanonicalIsMinimalOverRotations) {
    const dim_t n = 9;
    for (node_t x = 0; x < (node_t{1} << n); x += 5) {
        node_t expected = x;
        for (dim_t j = 1; j < n; ++j) {
            expected = std::min(expected, rotate_right(x, j, n));
        }
        EXPECT_EQ(necklace_canonical(x, n), expected);
    }
}

TEST(Necklace, PaperGeneratorSetExample) {
    // (001001), (010010), (100100) form one generator set (§2).
    const dim_t n = 6;
    EXPECT_EQ(necklace_canonical(0b001001, n), 0b001001u);
    EXPECT_EQ(necklace_canonical(0b010010, n), 0b001001u);
    EXPECT_EQ(necklace_canonical(0b100100, n), 0b001001u);
}

TEST(Necklace, BaseOfConsistentPaperExample) {
    // base((110110)) = 1 (§4.1). (The companion example (011010) -> 3 in the
    // paper contradicts its own definition, which yields 1; see DESIGN.md.)
    EXPECT_EQ(base(0b110110, 6), 1);
}

TEST(Necklace, BaseIsLeastRotationReachingCanonical) {
    const dim_t n = 8;
    for (node_t x = 1; x < (node_t{1} << n); ++x) {
        const dim_t b = base(x, n);
        EXPECT_EQ(rotate_right(x, b, n), necklace_canonical(x, n));
        for (dim_t j = 0; j < b; ++j) {
            EXPECT_NE(rotate_right(x, j, n), necklace_canonical(x, n));
        }
    }
}

TEST(Necklace, CanonicalRotationIsOddForNonzero) {
    // The minimal rotation of a nonzero string ends in a 1 bit — the fact
    // that guarantees every BST node i has bit base(i) set (§4.1).
    const dim_t n = 10;
    for (node_t x = 1; x < (node_t{1} << n); x += 3) {
        EXPECT_TRUE(test_bit(necklace_canonical(x, n), 0)) << x;
        EXPECT_TRUE(test_bit(x, base(x, n))) << x;
    }
}

TEST(Necklace, BaseSetSizeIsLengthOverPeriod) {
    const dim_t n = 12;
    for (node_t x = 0; x < (node_t{1} << n); x += 17) {
        EXPECT_EQ(base_set(x, n).size(),
                  static_cast<std::size_t>(n / period(x, n)));
    }
}

TEST(Necklace, NecklaceCountMatchesBruteForce) {
    for (dim_t n = 1; n <= 14; ++n) {
        std::set<node_t> canons;
        for (node_t x = 0; x < (node_t{1} << n); ++x) {
            canons.insert(necklace_canonical(x, n));
        }
        EXPECT_EQ(necklace_count(n), canons.size()) << "n=" << n;
    }
}

// OEIS A000031: necklaces over a binary alphabet.
TEST(Necklace, NecklaceCountKnownValues) {
    EXPECT_EQ(necklace_count(1), 2u);
    EXPECT_EQ(necklace_count(4), 6u);
    EXPECT_EQ(necklace_count(8), 36u);
    EXPECT_EQ(necklace_count(16), 4116u);
    EXPECT_EQ(necklace_count(20), 52488u);
}

TEST(Necklace, CyclicStringCountMatchesBruteForce) {
    for (dim_t n = 1; n <= 14; ++n) {
        std::uint64_t brute = 0;
        for (node_t x = 0; x < (node_t{1} << n); ++x) {
            brute += is_cyclic(x, n) ? 1u : 0u;
        }
        EXPECT_EQ(cyclic_string_count(n), brute) << "n=" << n;
    }
}

TEST(Necklace, CyclicNecklaceCountMatchesBruteForce) {
    for (dim_t n = 1; n <= 14; ++n) {
        std::set<node_t> degenerate;
        for (node_t x = 0; x < (node_t{1} << n); ++x) {
            if (is_cyclic(x, n)) {
                degenerate.insert(necklace_canonical(x, n));
            }
        }
        EXPECT_EQ(cyclic_necklace_count(n), degenerate.size()) << "n=" << n;
    }
}

// Lemma 4.1 relies on B = O(sqrt N): check the bound numerically.
TEST(Necklace, DegenerateNecklacesAreOrderSqrtN) {
    for (dim_t n = 2; n <= 20; ++n) {
        const double bound =
            3.0 * std::sqrt(std::ldexp(1.0, n)); // generous constant
        EXPECT_LT(static_cast<double>(cyclic_necklace_count(n)), bound)
            << "n=" << n;
    }
}

TEST(Necklace, BaseCensusCoversEveryNonzeroAddress) {
    for (dim_t n = 2; n <= 12; ++n) {
        const auto census = base_census(n);
        std::uint64_t total = 0;
        for (const auto c : census) {
            total += c;
        }
        EXPECT_EQ(total, (std::uint64_t{1} << n) - 1);
    }
}

TEST(Necklace, BaseCensusMatchesDirectCount) {
    const dim_t n = 10;
    const auto census = base_census(n);
    std::map<dim_t, std::uint64_t> direct;
    for (node_t x = 1; x < (node_t{1} << n); ++x) {
        ++direct[base(x, n)];
    }
    for (dim_t j = 0; j < n; ++j) {
        EXPECT_EQ(census[static_cast<std::size_t>(j)], direct[j]);
    }
}

} // namespace
} // namespace hcube::hc
