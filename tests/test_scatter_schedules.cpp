// Behavioural tests for personalized communication (paper §4): every
// scatter schedule validates under its port model, delivers exactly the
// right payload to each destination, and uses the step counts behind §4.2;
// gather (the reverse operation) round-trips.
#include "routing/scatter.hpp"

#include "trees/bst.hpp"
#include "trees/sbt.hpp"
#include "trees/tcbt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hcube::routing {
namespace {

using sim::CycleStats;
using sim::execute_schedule;
using trees::SpanningTree;

/// Store-and-forward delivery invariant: node i saw packet p exactly when i
/// lies on the tree path from the root to p's destination — in particular
/// every destination got its own payload and nothing leaked off-path.
void expect_exact_scatter(const CycleStats& stats, const Schedule& schedule,
                          const SpanningTree& tree, packet_t per_dest) {
    const node_t count = node_t{1} << schedule.n;
    std::vector<std::set<node_t>> on_path(count);
    for (node_t dest = 0; dest < count; ++dest) {
        if (dest == tree.root) {
            continue;
        }
        for (node_t u = dest;; u = tree.parent[u]) {
            on_path[dest].insert(u);
            if (u == tree.root) {
                break;
            }
        }
    }
    for (node_t i = 0; i < count; ++i) {
        for (node_t rel = 1; rel < count; ++rel) {
            const node_t dest = tree.root ^ rel;
            for (packet_t k = 0; k < per_dest; ++k) {
                const packet_t p =
                    scatter_packet_id(dest, tree.root, per_dest, k);
                EXPECT_EQ(stats.holds(i, p), on_path[dest].contains(i))
                    << "node " << i << " packet " << p;
            }
        }
    }
}

struct Case {
    dim_t n;
    node_t source;
    packet_t per_dest;
};

class ScatterSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ScatterSweep, SbtDescendingOnePortIsRootBound) {
    const auto [n, s, Pd] = GetParam();
    const SpanningTree tree = trees::build_sbt(n, s);
    const Schedule schedule =
        scatter_one_port(tree, descending_dest_order(tree), Pd);
    const auto stats =
        execute_schedule(schedule, sim::PortModel::one_port_full_duplex);
    expect_exact_scatter(stats, schedule, tree, Pd);
    // The root sends (N-1)·Pd packets, one per cycle; descending order ends
    // with relative address 1 (one hop), so completion tracks the root.
    const std::uint32_t root_cycles = ((node_t{1} << n) - 1) * Pd;
    EXPECT_GE(stats.makespan, root_cycles);
    EXPECT_LE(stats.makespan, root_cycles + static_cast<std::uint32_t>(n));
}

TEST_P(ScatterSweep, BstCyclicOnePortMatchesSbtOnePort) {
    const auto [n, s, Pd] = GetParam();
    const SpanningTree tree = trees::build_bst(n, s);
    const Schedule schedule = scatter_one_port(
        tree, cyclic_dest_order(tree, SubtreeOrder::reverse_breadth_first),
        Pd);
    const auto stats =
        execute_schedule(schedule, sim::PortModel::one_port_full_duplex);
    expect_exact_scatter(stats, schedule, tree, Pd);
    // §4.3: with one port and B <= M, SBT- and BST-based personalized
    // communication have the same complexity (both root-bound).
    const std::uint32_t root_cycles = ((node_t{1} << n) - 1) * Pd;
    EXPECT_GE(stats.makespan, root_cycles);
    EXPECT_LE(stats.makespan, root_cycles + 2 * static_cast<std::uint32_t>(n));
}

TEST_P(ScatterSweep, BstAllPortHitsTheBalancedLowerBound) {
    const auto [n, s, Pd] = GetParam();
    if (n < 2) {
        GTEST_SKIP();
    }
    const SpanningTree tree = trees::build_bst(n, s);
    const Schedule schedule = scatter_all_port(
        tree,
        per_subtree_dest_orders(tree, SubtreeOrder::reverse_breadth_first),
        Pd);
    const auto stats = execute_schedule(schedule, sim::PortModel::all_port);
    expect_exact_scatter(stats, schedule, tree, Pd);
    // §4.2.2: the root streams each subtree concurrently; completion is the
    // max subtree load ~ N/log N times Pd, plus a pipeline tail.
    const auto sizes = tree.subtree_sizes();
    const auto max_size =
        static_cast<std::uint32_t>(*std::ranges::max_element(sizes));
    EXPECT_GE(stats.makespan, max_size * Pd);
    EXPECT_LE(stats.makespan,
              max_size * Pd + 2 * static_cast<std::uint32_t>(n));
}

TEST_P(ScatterSweep, SbtAllPortIsBoundByTheBigSubtree) {
    const auto [n, s, Pd] = GetParam();
    const SpanningTree tree = trees::build_sbt(n, s);
    const Schedule schedule = scatter_all_port(
        tree,
        per_subtree_dest_orders(tree, SubtreeOrder::reverse_breadth_first),
        Pd);
    const auto stats = execute_schedule(schedule, sim::PortModel::all_port);
    expect_exact_scatter(stats, schedule, tree, Pd);
    // Subtree 0 holds N/2 nodes: the SBT cannot do better than N/2 · Pd.
    const std::uint32_t bound = (node_t{1} << (n - 1)) * Pd;
    EXPECT_GE(stats.makespan, bound);
    EXPECT_LE(stats.makespan, bound + 2 * static_cast<std::uint32_t>(n));
}

TEST_P(ScatterSweep, DepthFirstOrderAlsoDelivers) {
    const auto [n, s, Pd] = GetParam();
    const SpanningTree tree = trees::build_bst(n, s);
    const Schedule schedule = scatter_one_port(
        tree, cyclic_dest_order(tree, SubtreeOrder::depth_first), Pd);
    const auto stats =
        execute_schedule(schedule, sim::PortModel::one_port_full_duplex);
    expect_exact_scatter(stats, schedule, tree, Pd);
}

TEST_P(ScatterSweep, GatherIsTheReverseOperation) {
    const auto [n, s, Pd] = GetParam();
    const SpanningTree tree = trees::build_sbt(n, s);
    const Schedule scatter =
        scatter_one_port(tree, descending_dest_order(tree), Pd);
    const Schedule gather = reverse_schedule(scatter);

    // Every packet starts at its scatter destination...
    for (node_t rel = 1; rel < (node_t{1} << n); ++rel) {
        for (packet_t k = 0; k < Pd; ++k) {
            EXPECT_EQ(gather.initial_holder[scatter_packet_id(s ^ rel, s, Pd,
                                                              k)],
                      s ^ rel);
        }
    }
    // ... is feasible under the same port model, and ends at the root.
    const auto stats =
        execute_schedule(gather, sim::PortModel::one_port_full_duplex);
    for (packet_t p = 0; p < gather.packet_count; ++p) {
        EXPECT_TRUE(stats.holds(s, p));
    }
    // Same number of routing steps by time symmetry.
    const auto fwd =
        execute_schedule(scatter, sim::PortModel::one_port_full_duplex);
    EXPECT_EQ(stats.makespan, fwd.makespan);
}

INSTANTIATE_TEST_SUITE_P(
    DimensionsSourcesPackets, ScatterSweep,
    ::testing::Values(Case{2, 0, 1}, Case{3, 0, 1}, Case{3, 5, 2},
                      Case{4, 0, 1}, Case{5, 0b10010, 1}, Case{6, 0, 2},
                      Case{7, 0, 1}),
    [](const auto& param_info) {
        return "n" + std::to_string(param_info.param.n) + "_s" +
               std::to_string(param_info.param.source) + "_p" +
               std::to_string(param_info.param.per_dest);
    });

// §4.2.2's headline: with all ports, the BST beats the SBT by ~ log N / 2.
TEST(Scatter, BstBeatsSbtByHalfLogNAllPort) {
    const dim_t n = 7;
    const SpanningTree sbt = trees::build_sbt(n, 0);
    const SpanningTree bst = trees::build_bst(n, 0);
    const auto run = [&](const SpanningTree& tree) {
        return execute_schedule(
                   scatter_all_port(
                       tree,
                       per_subtree_dest_orders(
                           tree, SubtreeOrder::reverse_breadth_first),
                       1),
                   sim::PortModel::all_port)
            .makespan;
    };
    const double speedup =
        static_cast<double>(run(sbt)) / static_cast<double>(run(bst));
    // N/2 vs ~N/log N: expect ~ log N / 2 = 3.5 (within pipeline-tail slop).
    EXPECT_GT(speedup, 0.8 * n / 2.0);
    EXPECT_LT(speedup, 1.2 * n / 2.0);
}

// The emission orders really are the §5.2 policies.
TEST(Scatter, DescendingOrderUsesGrayCodePortPattern) {
    const SpanningTree tree = trees::build_sbt(4, 0);
    const auto order = descending_dest_order(tree);
    ASSERT_EQ(order.size(), 15u);
    EXPECT_EQ(order.front(), 15u);
    EXPECT_EQ(order.back(), 1u);
    // First hop of destination d is through port lowest_one_bit(d):
    // descending addresses give the ruler pattern 0,1,0,2,0,1,0,...
    // i.e. port 0 every other step (§5.2).
    int port0 = 0;
    for (std::size_t i = 0; i < order.size(); i += 2) {
        port0 += (order[i] & 1u) ? 1 : 0;
    }
    EXPECT_EQ(port0, 8); // all odd destinations sit at even positions
}

TEST(Scatter, CyclicOrderRoundRobinsSubtrees) {
    const SpanningTree tree = trees::build_bst(5, 0);
    const auto order =
        cyclic_dest_order(tree, SubtreeOrder::reverse_breadth_first);
    ASSERT_EQ(order.size(), 31u);
    // The first n entries hit n distinct subtrees.
    std::set<dim_t> first_round;
    for (dim_t j = 0; j < 5; ++j) {
        first_round.insert(tree.subtree[order[static_cast<std::size_t>(j)]]);
    }
    EXPECT_EQ(first_round.size(), 5u);
}

TEST(Scatter, ReverseBreadthFirstSendsFarthestFirst) {
    const SpanningTree tree = trees::build_bst(6, 0);
    for (const auto& seq :
         per_subtree_dest_orders(tree, SubtreeOrder::reverse_breadth_first)) {
        for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
            EXPECT_GE(tree.level[seq[i]], tree.level[seq[i + 1]]);
        }
    }
}

// TCBT scatter works through the same generic machinery (Table 6 row).
TEST(Scatter, TcbtScatterDelivers) {
    const dim_t n = 5;
    const SpanningTree tree = trees::build_tcbt(n, 0);
    const Schedule schedule =
        scatter_one_port(tree, descending_dest_order(tree), 1);
    const auto stats =
        execute_schedule(schedule, sim::PortModel::one_port_full_duplex);
    expect_exact_scatter(stats, schedule, tree, 1);
}

} // namespace
} // namespace hcube::routing
