// The inject → detect legs of hcube::ft: a FaultPlan armed on a compiled
// plan's channels must surface through each engine exactly as designed —
// kills and drops as bounded-wait arrival timeouts (or stream mismatches on
// the async engine, where the ring head may already show a later block),
// corruption as a checksum mismatch, delays absorbed silently — and the
// first detected fault must name the injected directed link in its
// structured FaultReport.
#include "ft/fault_model.hpp"
#include "ft/injector.hpp"

#include "routing/schedule_export.hpp"
#include "rt/async_player.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <set>
#include <utility>

namespace hcube::ft {
namespace {

using routing::BroadcastDiscipline;
using sim::packet_t;
using sim::PortModel;
using sim::Schedule;

Schedule sbt_broadcast(dim_t n, node_t root, packet_t packets) {
    return routing::make_tree_broadcast(
        trees::build_sbt(n, root), BroadcastDiscipline::paced, packets,
        PortModel::one_port_full_duplex);
}

/// Pushes the schedule makes per directed link, to aim mid-stream faults.
std::map<std::pair<node_t, node_t>, std::uint32_t>
pushes_per_link(const Schedule& s) {
    std::map<std::pair<node_t, node_t>, std::uint32_t> counts;
    for (const sim::ScheduledSend& send : s.sends) {
        ++counts[{send.from, send.to}];
    }
    return counts;
}

/// A link the schedule pushes at least two blocks across (so a mid-stream
/// fault is genuinely mid-broadcast), plus its total push count.
DirectedLink busy_link(const Schedule& s, std::uint32_t& count) {
    for (const auto& [link, pushes] : pushes_per_link(s)) {
        if (pushes >= 2) {
            count = pushes;
            return {link.first, link.second};
        }
    }
    ADD_FAILURE() << "no link carries two blocks";
    return {};
}

TEST(FtFaultPlan, FluentBuildersFillSpecs) {
    FaultPlan plan;
    plan.kill_link(0, 1, 3)
        .drop(1, 3, 2, 4)
        .corrupt(3, 7, 1, 2, 9)
        .delay(7, 5, 0, 250, 6);
    ASSERT_EQ(plan.specs().size(), 4u);

    const FaultSpec& kill = plan.specs()[0];
    EXPECT_EQ(kill.cls, InjectClass::kill_link);
    EXPECT_EQ(kill.link, (DirectedLink{0, 1}));
    EXPECT_EQ(kill.at_push, 3u);
    EXPECT_EQ(kill.pushes, ~std::uint32_t{0});

    const FaultSpec& drop = plan.specs()[1];
    EXPECT_EQ(drop.cls, InjectClass::transient_drop);
    EXPECT_EQ(drop.at_push, 2u);
    EXPECT_EQ(drop.pushes, 4u);

    const FaultSpec& corrupt = plan.specs()[2];
    EXPECT_EQ(corrupt.cls, InjectClass::corrupt_payload);
    EXPECT_EQ(corrupt.param, 9u);

    const FaultSpec& delay = plan.specs()[3];
    EXPECT_EQ(delay.cls, InjectClass::delay_delivery);
    EXPECT_EQ(delay.param, 250u);
    EXPECT_EQ(delay.pushes, 6u);
}

TEST(FtFaultPlan, RandomIsDeterministicOnDistinctCubeLinks) {
    constexpr dim_t n = 4;
    const FaultPlan a = FaultPlan::random(n, 7, 8);
    const FaultPlan b = FaultPlan::random(n, 7, 8);
    ASSERT_EQ(a.specs().size(), 8u);
    ASSERT_EQ(b.specs().size(), 8u);

    std::set<std::pair<node_t, node_t>> seen;
    for (std::size_t i = 0; i < a.specs().size(); ++i) {
        const FaultSpec& spec = a.specs()[i];
        EXPECT_EQ(spec.link, b.specs()[i].link);
        EXPECT_EQ(spec.cls, b.specs()[i].cls);
        EXPECT_EQ(spec.at_push, b.specs()[i].at_push);
        // Every drawn link is a real directed cube link, drawn once.
        EXPECT_LT(spec.link.from, node_t{1} << n);
        EXPECT_TRUE(std::has_single_bit(spec.link.from ^ spec.link.to));
        EXPECT_TRUE(
            seen.insert({spec.link.from, spec.link.to}).second);
    }
    // All four classes appear when count >= 4 (cycled deterministically).
    std::set<InjectClass> classes;
    for (const FaultSpec& spec : a.specs()) {
        classes.insert(spec.cls);
    }
    EXPECT_EQ(classes.size(), 4u);
}

TEST(FtInject, KillLinkTimesOutOnBarrierEngine) {
    const Schedule schedule = sbt_broadcast(4, 0, 6);
    const rt::Plan plan =
        rt::compile_plan(schedule, rt::DataMode::move, 16, 2);

    std::uint32_t count = 0;
    const DirectedLink dead = busy_link(schedule, count);
    FaultPlan faults;
    faults.kill_link(dead.from, dead.to, count / 2);
    FaultInjector injector(faults);
    injector.arm(plan);
    EXPECT_EQ(injector.unmatched(), 0u);

    rt::Player player(plan);
    player.set_detection(
        {.arrival_timeout_us = 1000, .abort_on_fault = true});
    player.set_fault_hook(&injector);
    const rt::PlayStats stats = player.play();

    EXPECT_FALSE(stats.clean());
    EXPECT_GE(stats.timeouts, 1u);
    EXPECT_GE(injector.dropped(), 1u);
    const FaultReport& report = player.fault_report();
    // The barrier engine runs in lockstep, so the kill can only manifest
    // as the receiver's bounded wait expiring — on the killed link.
    EXPECT_EQ(report.cls, DetectClass::arrival_timeout);
    EXPECT_EQ(report.from, dead.from);
    EXPECT_EQ(report.to, dead.to);
    EXPECT_LT(report.cycle, plan.cycles);
}

TEST(FtInject, CorruptionReportsChecksumMismatchWithLinkIdentity) {
    const Schedule schedule = sbt_broadcast(3, 0, 4);
    const rt::Plan plan =
        rt::compile_plan(schedule, rt::DataMode::move, 16, 2);

    std::uint32_t count = 0;
    const DirectedLink target = busy_link(schedule, count);
    FaultPlan faults;
    faults.corrupt(target.from, target.to, count / 2);
    FaultInjector injector(faults);
    injector.arm(plan);

    rt::Player player(plan);
    player.set_detection(
        {.arrival_timeout_us = 1000, .abort_on_fault = true});
    player.set_fault_hook(&injector);
    const rt::PlayStats stats = player.play();

    EXPECT_FALSE(stats.clean());
    EXPECT_GE(stats.checksum_failures, 1u);
    EXPECT_EQ(injector.corrupted(), 1u);
    const FaultReport& report = player.fault_report();
    EXPECT_EQ(report.cls, DetectClass::checksum_mismatch);
    EXPECT_EQ(report.from, target.from);
    EXPECT_EQ(report.to, target.to);
}

TEST(FtInject, DelayWithinTimeoutIsAbsorbedByBothEngines) {
    const Schedule schedule = sbt_broadcast(3, 0, 4);
    const rt::Plan plan =
        rt::compile_plan(schedule, rt::DataMode::move, 16, 2);

    std::uint32_t count = 0;
    const DirectedLink slow = busy_link(schedule, count);
    FaultPlan faults;
    faults.delay(slow.from, slow.to, 0, 200, 2);

    {
        FaultInjector injector(faults);
        injector.arm(plan);
        rt::Player player(plan);
        player.set_detection(
            {.arrival_timeout_us = 50000, .abort_on_fault = true});
        player.set_fault_hook(&injector);
        const rt::PlayStats stats = player.play();
        EXPECT_TRUE(stats.clean());
        EXPECT_EQ(stats.blocks_delivered, schedule.sends.size());
        EXPECT_EQ(injector.delayed(), 2u);
        EXPECT_FALSE(player.fault_report().faulted());
    }
    {
        FaultInjector injector(faults);
        injector.arm(plan);
        rt::AsyncPlayer player(plan);
        player.set_detection(
            {.arrival_timeout_us = 50000, .abort_on_fault = true});
        player.set_fault_hook(&injector);
        const rt::PlayStats stats = player.play();
        EXPECT_TRUE(stats.clean());
        EXPECT_EQ(stats.blocks_delivered, schedule.sends.size());
        EXPECT_EQ(injector.delayed(), 2u);
        EXPECT_FALSE(player.fault_report().faulted());
    }
}

TEST(FtInject, FaultOnUnusedLinkStaysInert) {
    const Schedule schedule = sbt_broadcast(3, 0, 3);
    const rt::Plan plan =
        rt::compile_plan(schedule, rt::DataMode::move, 16, 2);

    // No broadcast schedule ever sends INTO its root, so this fault can
    // never land on a compiled channel.
    FaultPlan faults;
    faults.kill_link(1, 0, 0);
    FaultInjector injector(faults);
    injector.arm(plan);
    EXPECT_EQ(injector.unmatched(), 1u);

    rt::Player player(plan);
    player.set_detection(
        {.arrival_timeout_us = 1000, .abort_on_fault = true});
    player.set_fault_hook(&injector);
    const rt::PlayStats stats = player.play();
    EXPECT_TRUE(stats.clean());
    EXPECT_EQ(stats.blocks_delivered, schedule.sends.size());
    EXPECT_EQ(injector.dropped(), 0u);
    EXPECT_FALSE(player.fault_report().faulted());
}

TEST(FtInject, DisabledDetectionKeepsLegacyCountersOnly) {
    const Schedule schedule = sbt_broadcast(4, 0, 4);
    const rt::Plan plan =
        rt::compile_plan(schedule, rt::DataMode::move, 16, 2);

    std::uint32_t count = 0;
    const DirectedLink dead = busy_link(schedule, count);
    FaultPlan faults;
    faults.kill_link(dead.from, dead.to, 0);
    FaultInjector injector(faults);
    injector.arm(plan);

    // No set_detection: the run must not block on a bounded wait and must
    // keep the pre-ft contract — count the faults, never abort, no report.
    rt::Player player(plan);
    player.set_fault_hook(&injector);
    const rt::PlayStats stats = player.play();
    EXPECT_FALSE(stats.clean());
    EXPECT_GE(stats.channel_faults, 1u);
    EXPECT_EQ(stats.timeouts, 0u);
    EXPECT_FALSE(player.fault_report().faulted());
}

TEST(FtInject, AsyncEngineNamesTheDroppedLink) {
    const Schedule schedule = sbt_broadcast(4, 0, 6);
    const rt::Plan plan =
        rt::compile_plan(schedule, rt::DataMode::move, 16, 4);

    std::uint32_t count = 0;
    const DirectedLink dead = busy_link(schedule, count);
    FaultPlan faults;
    faults.drop(dead.from, dead.to, count / 2, 1);
    FaultInjector injector(faults);
    injector.arm(plan);
    EXPECT_EQ(injector.unmatched(), 0u);

    rt::AsyncPlayer player(plan);
    player.set_detection(
        {.arrival_timeout_us = 1000, .abort_on_fault = true});
    player.set_fault_hook(&injector);
    const rt::PlayStats stats = player.play();

    EXPECT_FALSE(stats.clean());
    EXPECT_EQ(injector.dropped(), 1u);
    const FaultReport& report = player.fault_report();
    // The async ring head may already show the next publication when the
    // receive runs, so the drop manifests as either detection class — but
    // it must always be pinned to the injected link.
    EXPECT_TRUE(report.cls == DetectClass::arrival_timeout ||
                report.cls == DetectClass::stream_mismatch);
    EXPECT_EQ(report.from, dead.from);
    EXPECT_EQ(report.to, dead.to);
}

TEST(FtInject, RewindRearmsTheSameTransientFault) {
    const Schedule schedule = sbt_broadcast(3, 0, 4);
    const rt::Plan plan =
        rt::compile_plan(schedule, rt::DataMode::move, 16, 2);

    std::uint32_t count = 0;
    const DirectedLink dead = busy_link(schedule, count);
    FaultPlan faults;
    faults.drop(dead.from, dead.to, count / 2, 1);
    FaultInjector injector(faults);
    injector.arm(plan);

    rt::Player player(plan);
    player.set_detection(
        {.arrival_timeout_us = 1000, .abort_on_fault = true});
    player.set_fault_hook(&injector);

    // Idempotent re-execution: the logical push counters rewind, so the
    // same transient fires again on the retry of the *same* schedule.
    EXPECT_FALSE(player.play().clean());
    injector.rewind();
    EXPECT_FALSE(player.play().clean());
    EXPECT_EQ(injector.dropped(), 2u);
}

} // namespace
} // namespace hcube::ft
