// The net transport's differential suite: every collective family runs as
// a multi-process socket job (net::run_job) and its assembled final
// memory image is byte-compared against the in-process barrier Player —
// the thread backend stays the oracle for the process backend. On top of
// the clean sweep, seeded wire-fault torture (drops + corruption +
// forced duplication) proves the ack/retransmit/dedup machinery converges
// to the same bytes, and a killed link proves failure stays bounded and
// reported instead of hanging.
#include "net/job.hpp"

#include "rt/plan.hpp"
#include "rt/player.hpp"
#include "svc/signature.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace hcube::net {
namespace {

svc::Signature sig_of(svc::Op op, svc::Family family, dim_t n, node_t root,
                      packet_t packets, std::uint32_t block) {
    svc::Signature s;
    s.op = op;
    s.family = family;
    s.n = n;
    s.root = root;
    s.packets = packets;
    s.block_elems = block;
    return s;
}

std::string label(const svc::Signature& sig, std::uint32_t procs) {
    return std::string(svc::to_string(sig.op)) + "/" +
           std::string(svc::to_string(sig.family)) + " n=" +
           std::to_string(sig.n) + " procs=" + std::to_string(procs);
}

/// Runs `sig` as a `procs`-process socket job and byte-compares every
/// slot of the assembled image against a freshly played in-process
/// barrier oracle compiled with workers == procs.
void run_and_compare(const svc::Signature& sig, std::uint32_t procs,
                     ft::TransportClass transport,
                     const WireFaults::Config& faults = {}) {
    SCOPED_TRACE(label(sig, procs));

    JobSpec spec;
    spec.sig = sig;
    spec.procs = procs;
    spec.transport = transport;
    spec.faults = faults;
    const JobResult result = run_job(spec);
    ASSERT_TRUE(result.ok) << result.error;

    const svc::GeneratedSchedule gen = svc::make_schedule(sig);
    const rt::Plan plan =
        rt::compile_plan(gen.exec, gen.mode, sig.block_elems, procs);
    rt::Player oracle(plan);
    const rt::PlayStats stats = oracle.play();
    ASSERT_TRUE(stats.clean());

    ASSERT_EQ(result.total_slots, plan.total_slots);
    ASSERT_EQ(result.block_elems, plan.block_elems);
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const node_t node = plan.slot_node[s];
        const packet_t packet = plan.slot_packet[s];
        const std::span<const double> expect = oracle.block(node, packet);
        const std::span<const double> got = result.block(plan, node, packet);
        ASSERT_EQ(expect.size(), plan.block_elems);
        ASSERT_EQ(got.size(), plan.block_elems)
            << "slot " << s << " missing from the job image";
        ASSERT_EQ(0, std::memcmp(expect.data(), got.data(),
                                 plan.block_elems * sizeof(double)))
            << "slot " << s << " (node " << node << ", packet " << packet
            << ") differs between ring and socket transports";
    }
}

// ------------------------------------------------------- clean sweep (uds)

TEST(NetTransport, BroadcastSbtMatchesOracle) {
    for (dim_t n = 3; n <= 6; ++n) {
        run_and_compare(sig_of(svc::Op::broadcast, svc::Family::sbt, n, 1, 4,
                               8),
                        /*procs=*/2 + static_cast<std::uint32_t>(n) % 3,
                        ft::TransportClass::uds);
    }
}

TEST(NetTransport, BroadcastMsbtMatchesOracle) {
    for (dim_t n = 3; n <= 6; ++n) {
        // MSBT needs packets divisible by n: packets = 2n exercises two
        // rounds over the n rotated trees.
        run_and_compare(sig_of(svc::Op::broadcast, svc::Family::msbt, n, 0,
                               static_cast<packet_t>(2 * n), 8),
                        /*procs=*/3, ft::TransportClass::uds);
    }
}

TEST(NetTransport, ScatterSbtAndBstMatchOracle) {
    for (dim_t n = 3; n <= 6; ++n) {
        run_and_compare(sig_of(svc::Op::scatter, svc::Family::sbt, n, 0, 2,
                               8),
                        /*procs=*/4, ft::TransportClass::uds);
        run_and_compare(sig_of(svc::Op::scatter, svc::Family::bst, n, 0, 2,
                               8),
                        /*procs=*/2, ft::TransportClass::uds);
    }
}

TEST(NetTransport, GatherSbtMatchesOracle) {
    for (dim_t n = 3; n <= 6; ++n) {
        run_and_compare(sig_of(svc::Op::gather, svc::Family::sbt, n, 2, 2,
                               8),
                        /*procs=*/3, ft::TransportClass::uds);
    }
}

TEST(NetTransport, ReduceSbtCombinesIdentically) {
    // Combine mode: accumulation ORDER matters for float bit-exactness,
    // so a byte-identical image proves the socket backend preserves the
    // oracle's delivery order, not just its set of contributions.
    for (dim_t n = 3; n <= 6; ++n) {
        run_and_compare(sig_of(svc::Op::reduce, svc::Family::sbt, n, 0, 2,
                               8),
                        /*procs=*/4, ft::TransportClass::uds);
    }
}

TEST(NetTransport, AllgatherMatchesOracle) {
    for (dim_t n = 3; n <= 6; ++n) {
        run_and_compare(sig_of(svc::Op::allgather, svc::Family::sbt, n, 0, 1,
                               8),
                        /*procs=*/2, ft::TransportClass::uds);
    }
}

TEST(NetTransport, AlltoallMatchesOracle) {
    for (dim_t n = 3; n <= 5; ++n) {
        run_and_compare(sig_of(svc::Op::alltoall, svc::Family::sbt, n, 0, 1,
                               8),
                        /*procs=*/4, ft::TransportClass::uds);
    }
}

TEST(NetTransport, SingleProcessDegenerateJob) {
    // procs=1: every channel is local, the wire moves nothing — the
    // launcher/collection protocol still has to hold up.
    run_and_compare(sig_of(svc::Op::broadcast, svc::Family::sbt, 4, 0, 2, 8),
                    /*procs=*/1, ft::TransportClass::uds);
}

// ------------------------------------------------------------ tcp loopback

TEST(NetTransport, TcpLoopbackAllgatherMatchesOracle) {
    run_and_compare(sig_of(svc::Op::allgather, svc::Family::sbt, 3, 0, 1, 8),
                    /*procs=*/2, ft::TransportClass::tcp);
}

// ---------------------------------------------------------------- torture

/// A cross-rank link of the compiled plan (owner(from) != owner(to)) —
/// wire faults on a process-local channel never touch the wire.
bool find_cross_link(const svc::Signature& sig, std::uint32_t procs,
                     node_t& from, node_t& to) {
    const svc::GeneratedSchedule gen = svc::make_schedule(sig);
    const rt::Plan plan =
        rt::compile_plan(gen.exec, gen.mode, sig.block_elems, procs);
    for (std::uint32_t c = 0; c < plan.channel_count; ++c) {
        const auto [f, t] = plan.channel_endpoints(c);
        if (plan.owner_of(f) != plan.owner_of(t)) {
            from = f;
            to = t;
            return true;
        }
    }
    return false;
}

TEST(NetTransport, TortureDropsCorruptionAndDuplicatesConverge) {
    const svc::Signature sig =
        sig_of(svc::Op::broadcast, svc::Family::sbt, 4, 0, 4, 8);
    const std::uint32_t procs = 2;
    node_t from = 0;
    node_t to = 0;
    ASSERT_TRUE(find_cross_link(sig, procs, from, to));

    WireFaults::Config faults;
    faults.plan.drop(from, to, /*at_push=*/0, /*pushes=*/2);
    faults.plan.corrupt(from, to, /*at_push=*/2, /*pushes=*/1, /*salt=*/5);
    faults.duplicate_percent = 100; // every surviving first send is doubled
    faults.seed = 0xc0ffee;

    JobSpec spec;
    spec.sig = sig;
    spec.procs = procs;
    spec.transport = ft::TransportClass::uds;
    spec.faults = faults;
    const JobResult result = run_job(spec);
    ASSERT_TRUE(result.ok) << result.error;

    // The faults demonstrably happened AND were healed.
    EXPECT_GT(result.wire.injected_drop, 0u);
    EXPECT_GT(result.wire.injected_dup, 0u);
    EXPECT_GT(result.wire.retransmits, 0u);
    EXPECT_GT(result.wire.dup_suppressed, 0u);
    EXPECT_GT(result.wire.corrupt_dropped, 0u);
    EXPECT_EQ(result.wire.link_failures, 0u);

    // And the healed run is still byte-identical to the oracle.
    run_and_compare(sig, procs, ft::TransportClass::uds, faults);
}

TEST(NetTransport, TortureIsDeterministicUnderSeed) {
    const svc::Signature sig =
        sig_of(svc::Op::broadcast, svc::Family::sbt, 3, 0, 4, 8);
    node_t from = 0;
    node_t to = 0;
    ASSERT_TRUE(find_cross_link(sig, 2, from, to));

    WireFaults::Config faults;
    faults.plan.drop(from, to, 0, 1);
    faults.duplicate_percent = 50;
    faults.seed = 42;

    JobSpec spec;
    spec.sig = sig;
    spec.procs = 2;
    spec.transport = ft::TransportClass::uds;
    spec.faults = faults;

    const JobResult a = run_job(spec);
    const JobResult b = run_job(spec);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    // Send-side fault application is a pure function of (seed, schedule):
    // both runs injected the identical perturbation set.
    EXPECT_EQ(a.wire.injected_drop, b.wire.injected_drop);
    EXPECT_EQ(a.wire.injected_dup, b.wire.injected_dup);
    EXPECT_EQ(a.wire.injected_corrupt, b.wire.injected_corrupt);
    EXPECT_EQ(a.memory, b.memory);
}

TEST(NetTransport, KilledLinkFailsBoundedAndReported) {
    const svc::Signature sig =
        sig_of(svc::Op::broadcast, svc::Family::sbt, 3, 0, 2, 8);
    const std::uint32_t procs = 2;
    node_t from = 0;
    node_t to = 0;
    ASSERT_TRUE(find_cross_link(sig, procs, from, to));

    WireFaults::Config faults;
    faults.plan.kill_link(from, to);

    JobSpec spec;
    spec.sig = sig;
    spec.procs = procs;
    spec.transport = ft::TransportClass::uds;
    spec.faults = faults;
    // Tight knobs keep retry exhaustion + the receiver's bounded arrival
    // timeout well under the collection deadline — "bounded" is the test.
    spec.reliable.max_attempts = 3;
    spec.reliable.backoff_base_us = 2'000;
    spec.reliable.backoff_cap_us = 16'000;
    spec.arrival_timeout_us = 100'000;

    const JobResult result = run_job(spec);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.error.empty());
    EXPECT_GT(result.wire.injected_drop, 0u);
    EXPECT_GT(result.wire.link_failures, 0u);

    // The victim rank reported a detected fault rather than vanishing.
    bool fault_seen = false;
    for (const RankReport& r : result.ranks) {
        fault_seen = fault_seen || (r.reported && r.fault.faulted());
    }
    EXPECT_TRUE(fault_seen);
}

} // namespace
} // namespace hcube::net
