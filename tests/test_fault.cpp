// Tests for fault-aware spanning trees (trees/fault.hpp).
#include "trees/fault.hpp"

#include "common/check.hpp"
#include "common/prng.hpp"
#include "hc/bits.hpp"
#include "hc/cube.hpp"
#include "routing/broadcast.hpp"
#include "trees/sbt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace hcube::trees {
namespace {

std::vector<dim_t> identity_order(dim_t n) {
    std::vector<dim_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    return order;
}

TEST(PermutedSbt, IdentityOrderReproducesTheSbt) {
    const dim_t n = 5;
    const auto order = identity_order(n);
    for (const node_t s : {node_t{0}, node_t{13}}) {
        const SpanningTree a = build_sbt(n, s);
        const SpanningTree b = build_sbt_permuted(n, s, order);
        EXPECT_EQ(a.parent, b.parent);
    }
}

TEST(PermutedSbt, AnyOrderYieldsABinomialSpanningTree) {
    const dim_t n = 6;
    SplitMix64 rng(3);
    auto order = identity_order(n);
    for (int trial = 0; trial < 10; ++trial) {
        rng.shuffle(order);
        const SpanningTree tree = build_sbt_permuted(n, 9, order);
        EXPECT_NO_THROW(validate_tree(tree));
        EXPECT_EQ(tree.height, n);
        // Binomial level populations survive the relabelling.
        std::vector<std::uint64_t> per_level(static_cast<std::size_t>(n) + 1,
                                             0);
        for (node_t i = 0; i < tree.node_count(); ++i) {
            ++per_level[static_cast<std::size_t>(tree.level[i])];
        }
        for (dim_t l = 0; l <= n; ++l) {
            EXPECT_EQ(per_level[static_cast<std::size_t>(l)],
                      hc::binomial(n, l));
        }
    }
}

TEST(PermutedSbt, ParentChildrenConsistent) {
    const dim_t n = 5;
    const std::vector<dim_t> order = {3, 0, 4, 1, 2};
    for (node_t i = 0; i < (node_t{1} << n); ++i) {
        for (const node_t c : sbt_children_permuted(i, 7, n, order)) {
            EXPECT_EQ(sbt_parent_permuted(c, 7, n, order), i);
        }
    }
}

TEST(FaultAvoidance, SingleMidCubeFaultKeepsBinomialShape) {
    const dim_t n = 5;
    const node_t s = 0;
    // A link far from the source: permuted SBTs should handle it.
    const Link bad[] = {make_link(0b01100, 0b01110)};
    const SpanningTree tree = build_broadcast_tree_avoiding(n, s, bad);
    EXPECT_NO_THROW(validate_tree(tree));
    EXPECT_TRUE(tree_avoids(tree, bad));
    EXPECT_EQ(tree.height, n); // stayed in the SBT family
}

TEST(FaultAvoidance, SourceIncidentFaultFallsBackToBfs) {
    const dim_t n = 4;
    const node_t s = 0b0101;
    const Link bad[] = {make_link(s, hc::flip_bit(s, 2))};
    const SpanningTree tree = build_broadcast_tree_avoiding(n, s, bad);
    EXPECT_NO_THROW(validate_tree(tree));
    EXPECT_TRUE(tree_avoids(tree, bad));
    // The cut-off neighbor is still reached, via the shortest detour —
    // three hops (any alternative path flips bit 2 once and some other bit
    // twice).
    EXPECT_EQ(tree.level[hc::flip_bit(s, 2)], 3);
}

TEST(FaultAvoidance, RandomFaultSetsSweep) {
    const dim_t n = 5;
    SplitMix64 rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        const auto s = static_cast<node_t>(rng.next_below(1u << n));
        std::vector<Link> bad;
        for (int f = 0; f < 3; ++f) {
            const auto u = static_cast<node_t>(rng.next_below(1u << n));
            const auto d = static_cast<dim_t>(rng.next_below(
                static_cast<std::uint64_t>(n)));
            bad.push_back(make_link(u, hc::flip_bit(u, d)));
        }
        const SpanningTree tree =
            build_broadcast_tree_avoiding(n, s, bad, rng.next());
        EXPECT_NO_THROW(validate_tree(tree));
        EXPECT_TRUE(tree_avoids(tree, bad));
    }
}

TEST(FaultAvoidance, BroadcastStillDeliversOnTheRepairedTree) {
    const dim_t n = 5;
    const Link bad[] = {make_link(0, 1), make_link(0b00110, 0b00100)};
    const SpanningTree tree = build_broadcast_tree_avoiding(n, 0, bad);
    const auto schedule =
        routing::paced_broadcast(tree, 4, sim::PortModel::all_port);
    const auto stats =
        sim::execute_schedule(schedule, sim::PortModel::all_port);
    for (node_t i = 0; i < tree.node_count(); ++i) {
        for (sim::packet_t p = 0; p < 4; ++p) {
            EXPECT_TRUE(stats.holds(i, p));
        }
    }
}

TEST(FaultAvoidance, EverySingleNonSourceFaultStaysInSbtFamily) {
    // A single faulty link not incident to the source is always avoidable
    // inside the permuted-SBT family: the tree uses {u, v} only when the
    // link's dimension is the highest-ranked set bit of v ^ s, and v ^ s
    // has a second set bit to outrank it — some cyclic rotation does.
    const dim_t n = 4;
    const node_t s = 6;
    for (node_t u = 0; u < (node_t{1} << n); ++u) {
        for (dim_t d = 0; d < n; ++d) {
            const node_t v = hc::flip_bit(u, d);
            if (v < u) {
                continue; // each undirected link once
            }
            const Link bad[] = {make_link(u, v)};
            const SpanningTree tree =
                build_broadcast_tree_avoiding(n, s, bad);
            EXPECT_NO_THROW(validate_tree(tree));
            EXPECT_TRUE(tree_avoids(tree, bad));
            if (u != s && v != s) {
                EXPECT_EQ(tree.height, n)
                    << "fell out of the SBT family for link " << u << "-"
                    << v;
            }
        }
    }
}

TEST(FaultAvoidance, IsolatingANonSourceNodeThrows) {
    const dim_t n = 3;
    const node_t victim = 5;
    // All n of the victim's links dead: no spanning tree can reach it.
    std::vector<Link> bad;
    for (dim_t d = 0; d < n; ++d) {
        bad.push_back(make_link(victim, hc::flip_bit(victim, d)));
    }
    EXPECT_THROW((void)build_broadcast_tree_avoiding(n, 0, bad),
                 check_error);
}

TEST(FaultAvoidance, DisconnectingTheSourceThrows) {
    const dim_t n = 2;
    // Cut both of node 0's links: nothing can reach it.
    const Link bad[] = {make_link(0, 1), make_link(0, 2)};
    EXPECT_THROW((void)build_broadcast_tree_avoiding(n, 0, bad), check_error);
}

TEST(MakeLink, NormalizesAndValidates) {
    EXPECT_EQ(make_link(5, 4), (Link{4, 5}));
    EXPECT_EQ(make_link(4, 5), (Link{4, 5}));
    EXPECT_THROW((void)make_link(3, 5), check_error);
}

} // namespace
} // namespace hcube::trees
