// Table 2 — steady-state routing steps per distinct packet: measured as the
// makespan slope between two long pipelines, next to the paper's entries.
//
// Usage: bench_table2_cycles [--dim N] [--csv path]
#include "bench_util.hpp"

#include "model/broadcast_model.hpp"
#include "routing/broadcast.hpp"
#include "trees/hp.hpp"
#include "trees/sbt.hpp"
#include "trees/tcbt.hpp"

#include <cstdio>

namespace {

using namespace hcube;
using model::Algorithm;
using sim::PortModel;

double measured_slope(Algorithm algo, PortModel port, hc::dim_t n) {
    const hc::node_t s = 0;
    // makespan as a function of the pipeline length, per *distinct* packet.
    const auto makespan = [&](sim::packet_t packets) {
        routing::Schedule schedule;
        switch (algo) {
        case Algorithm::hp:
            schedule = routing::paced_broadcast(
                trees::build_hamiltonian_path(
                    n, s, trees::HpVariant::source_at_end),
                packets, port);
            break;
        case Algorithm::sbt:
            schedule = (port == PortModel::all_port)
                           ? routing::paced_broadcast(trees::build_sbt(n, s),
                                                      packets, port)
                           : routing::port_oriented_broadcast(
                                 trees::build_sbt(n, s), packets);
            break;
        case Algorithm::tcbt:
            schedule =
                routing::paced_broadcast(trees::build_tcbt(n, s), packets,
                                         port);
            break;
        case Algorithm::msbt:
            schedule = routing::msbt_broadcast(n, s, packets, port);
            break;
        case Algorithm::bst:
            break;
        }
        return sim::execute_schedule(schedule, port).makespan;
    };
    // The MSBT parameter counts packets per subtree: n distinct packets each.
    const double distinct_per_unit = (algo == Algorithm::msbt)
                                         ? static_cast<double>(n)
                                         : 1.0;
    constexpr sim::packet_t kShort = 8;
    constexpr sim::packet_t kLong = 24;
    return static_cast<double>(makespan(kLong) - makespan(kShort)) /
           ((kLong - kShort) * distinct_per_unit);
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 6));
    bench::banner("Table 2",
                  "cycles per distinct packet, n = " + std::to_string(n));

    const std::vector<std::string> header = {
        "Algorithm",        "1 s or r (model)", "1 s or r (sim)",
        "1 s and r (model)", "1 s and r (sim)",  "all ports (model)",
        "all ports (sim)"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (const auto algo : {Algorithm::hp, Algorithm::sbt, Algorithm::tcbt,
                            Algorithm::msbt}) {
        std::vector<std::string> row{std::string(model::to_string(algo))};
        for (const auto port : {PortModel::one_port_half_duplex,
                                PortModel::one_port_full_duplex,
                                PortModel::all_port}) {
            row.push_back(format_fixed(
                model::cycles_per_packet(algo, port, n), 3));
            row.push_back(format_fixed(measured_slope(algo, port, n), 3));
        }
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
