// Ablation — the B_opt columns of Table 3: sweep the packet size B and show
// that the measured broadcast time is minimized near the model's optimum for
// each algorithm/port row.
//
// Usage: bench_ablation_packet_size [--dim N] [--msg elements] [--csv path]
#include "bench_util.hpp"

#include "model/broadcast_model.hpp"

#include <cmath>
#include <cstdio>

int main(int argc, char** argv) {
    using namespace hcube;
    using model::Algorithm;
    using sim::PortModel;

    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 7));
    const double M = options.get_double("msg", 61440);
    const model::CommParams comm = model::ipsc_params();
    bench::banner("Ablation (Table 3 B_opt)",
                  "broadcast time vs packet size, n = " + std::to_string(n) +
                      ", M = " + format_fixed(M, 0));

    const struct {
        Algorithm algo;
        PortModel port;
        const char* name;
    } rows[] = {
        {Algorithm::sbt, PortModel::all_port, "SBT, logN ports"},
        {Algorithm::tcbt, PortModel::one_port_full_duplex, "TCBT, 1 s & r"},
        {Algorithm::msbt, PortModel::one_port_full_duplex, "MSBT, 1 s & r"},
        {Algorithm::msbt, PortModel::all_port, "MSBT, logN ports"},
    };

    std::vector<std::string> header = {"B"};
    for (const auto& r : rows) {
        header.push_back(r.name);
    }
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (const double B : {64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
                           8192.0, 16384.0}) {
        std::vector<std::string> row = {format_fixed(B, 0)};
        for (const auto& r : rows) {
            row.push_back(format_seconds(
                model::broadcast_time(r.algo, r.port, M, B, n, comm)));
        }
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);

    std::puts("");
    for (const auto& r : rows) {
        const double bopt = model::broadcast_bopt(r.algo, r.port, M, n, comm);
        const double tmin = model::broadcast_tmin(r.algo, r.port, M, n, comm);
        std::printf("%-18s B_opt = %8.1f   T_min = %s\n", r.name, bopt,
                    format_seconds(tmin).c_str());
    }
    std::puts("\nEach column bottoms out near its printed B_opt — the Table 3 "
              "optima.");
    return 0;
}
