// Extension bench — all-to-all personalized communication (paper §1 points
// at N concurrent BSTs; ref [8]): the classical dimension-order recursive
// exchange (exact cycle counts) next to N concurrent BST scatters resolved
// dynamically by the event engine.
//
// Usage: bench_alltoall [--max-dim N] [--msg bytes] [--csv path]
#include "bench_util.hpp"

#include "routing/alltoall.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace hcube;
    const CliOptions options(argc, argv);
    const auto max_dim =
        static_cast<hc::dim_t>(options.get_int("max-dim", 5));
    const double M = options.get_double("msg", 1024);
    bench::banner("Extension: all-to-all personalized",
                  "recursive exchange vs concurrent BST scatters");

    const std::vector<std::string> header = {
        "dim", "recursive-exchange cycles", "n*N/2 (model)",
        "bisection bound N/2",  "concurrent-BST time", "pairs delivered"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (hc::dim_t n = 2; n <= max_dim; ++n) {
        const auto schedule = routing::alltoall_recursive_exchange(n, 1);
        const auto stats = sim::execute_schedule(
            schedule, sim::PortModel::one_port_full_duplex);

        sim::EventParams params;
        params.model = sim::PortModel::one_port_full_duplex;
        params.packet_capacity = 1e18;
        sim::EventEngine engine(n, params);
        routing::AllToAllBstProtocol protocol(n, M);
        const auto ev = engine.run(protocol);

        const hc::node_t N = hc::node_t{1} << n;
        std::vector<std::string> row = {
            std::to_string(n), std::to_string(stats.makespan),
            std::to_string(static_cast<std::uint64_t>(n) * (N / 2)),
            std::to_string(N / 2),
            format_seconds(ev.completion_time),
            std::to_string(protocol.delivered())};
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nThe recursive exchange hits n*N/2 cycles exactly — a "
              "factor log N above the N/2\nbisection lower bound (every "
              "packet travels log N / 2 hops on average); the N\n"
              "concurrent translated-BST scatters deliver all N(N-1) "
              "payloads with contention\nresolved dynamically.");
    return 0;
}
