// Faithful copy of the pre-rewrite schedule executor (the growth seed's
// sim/cycle.cpp), kept as the baseline for bench_executor's before/after
// comparison. It validates exactly the same invariants as
// sim::execute_schedule but with the original data structures: eager
// per-send diagnostic strings, per-cycle std::set link tracking,
// std::map port counters, and a dense vector-of-vectors delivery matrix.
// Do not "optimize" this file — its slowness is the point.
#pragma once

#include "common/check.hpp"
#include "hc/bits.hpp"
#include "sim/cycle.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hcube::bench::legacy {

using sim::packet_t;
using sim::PortModel;
using sim::Schedule;
using sim::ScheduledSend;
using hc::node_t;

struct LegacyStats {
    std::uint32_t makespan = 0;
    std::uint64_t total_sends = 0;
    std::uint64_t max_sends_in_one_cycle = 0;
    std::vector<std::vector<std::uint32_t>> delivery_cycle;

    static constexpr std::uint32_t kNever = 0xffffffffu;
};

inline LegacyStats execute_schedule(const Schedule& schedule,
                                    PortModel model) {
    HCUBE_ENSURE(schedule.n >= 1 && schedule.n <= hc::kMaxDimension);
    const node_t count = node_t{1} << schedule.n;
    HCUBE_ENSURE(schedule.initial_holder.size() == schedule.packet_count);

    LegacyStats stats;
    stats.delivery_cycle.assign(
        count, std::vector<std::uint32_t>(schedule.packet_count,
                                          LegacyStats::kNever));
    for (packet_t p = 0; p < schedule.packet_count; ++p) {
        const node_t holder = schedule.initial_holder[p];
        HCUBE_ENSURE(holder < count);
        stats.delivery_cycle[holder][p] = 0;
    }

    std::vector<ScheduledSend> sends(schedule.sends.begin(),
                                     schedule.sends.end());
    std::ranges::stable_sort(sends, {}, &ScheduledSend::cycle);

    std::size_t at = 0;
    while (at < sends.size()) {
        const std::uint32_t cycle = sends[at].cycle;
        std::size_t end = at;
        while (end < sends.size() && sends[end].cycle == cycle) {
            ++end;
        }

        std::set<std::pair<node_t, node_t>> links_used;
        std::map<node_t, int> sends_by_node;
        std::map<node_t, int> recvs_by_node;

        for (std::size_t idx = at; idx < end; ++idx) {
            const ScheduledSend& send = sends[idx];
            const std::string where = "cycle " + std::to_string(cycle) +
                                      ", " + std::to_string(send.from) +
                                      " -> " + std::to_string(send.to) +
                                      ", packet " +
                                      std::to_string(send.packet);
            HCUBE_ENSURE_MSG(send.from < count && send.to < count,
                             "node out of range: " + where);
            HCUBE_ENSURE_MSG(hc::hamming(send.from, send.to) == 1,
                             "send between non-neighbors: " + where);
            HCUBE_ENSURE_MSG(send.packet < schedule.packet_count,
                             "unknown packet: " + where);
            HCUBE_ENSURE_MSG(
                stats.delivery_cycle[send.from][send.packet] <= cycle,
                "sender does not hold the packet yet: " + where);
            HCUBE_ENSURE_MSG(
                stats.delivery_cycle[send.to][send.packet] ==
                    LegacyStats::kNever,
                "receiver already holds the packet: " + where);
            HCUBE_ENSURE_MSG(
                links_used.emplace(send.from, send.to).second,
                "two packets on one directed link in one cycle: " + where);

            ++sends_by_node[send.from];
            ++recvs_by_node[send.to];
            stats.delivery_cycle[send.to][send.packet] = cycle + 1;
        }

        switch (model) {
        case PortModel::one_port_half_duplex:
            for (const auto& [node, n_sends] : sends_by_node) {
                auto it = recvs_by_node.find(node);
                const int n_recvs = (it == recvs_by_node.end()) ? 0
                                                                : it->second;
                HCUBE_ENSURE_MSG(n_sends + n_recvs <= 1,
                                 "half-duplex node " + std::to_string(node) +
                                     " does more than one operation in cycle " +
                                     std::to_string(cycle));
            }
            for (const auto& [node, n_recvs] : recvs_by_node) {
                HCUBE_ENSURE_MSG(n_recvs <= 1,
                                 "half-duplex node " + std::to_string(node) +
                                     " receives twice in cycle " +
                                     std::to_string(cycle));
            }
            break;
        case PortModel::one_port_full_duplex:
            for (const auto& [node, n_sends] : sends_by_node) {
                HCUBE_ENSURE_MSG(n_sends <= 1,
                                 "full-duplex node " + std::to_string(node) +
                                     " sends twice in cycle " +
                                     std::to_string(cycle));
            }
            for (const auto& [node, n_recvs] : recvs_by_node) {
                HCUBE_ENSURE_MSG(n_recvs <= 1,
                                 "full-duplex node " + std::to_string(node) +
                                     " receives twice in cycle " +
                                     std::to_string(cycle));
            }
            break;
        case PortModel::all_port:
            break;
        }

        stats.total_sends += end - at;
        stats.max_sends_in_one_cycle =
            std::max<std::uint64_t>(stats.max_sends_in_one_cycle, end - at);
        stats.makespan = cycle + 1;
        at = end;
    }
    return stats;
}

} // namespace hcube::bench::legacy
