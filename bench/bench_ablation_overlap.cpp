// Ablation — Figure 8's mechanism: the BST's measured advantage in
// personalized communication as a function of the cross-port overlap factor.
// The paper's analysis says SBT and BST are equal at one port; the measured
// gap is attributed entirely to overlap (§5.2). Sweeping the overlap factor
// shows the gap appearing from zero.
//
// Usage: bench_ablation_overlap [--dim N] [--msg bytes] [--csv path]
#include "bench_util.hpp"

#include "routing/protocols.hpp"
#include "routing/scatter.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <cstdio>

namespace {

using namespace hcube;

double run_scatter(const trees::SpanningTree& tree,
                   const std::vector<hc::node_t>& order, double M,
                   double overlap) {
    sim::EventParams params;
    params.model = sim::PortModel::one_port_half_duplex;
    params.overlap = overlap;
    sim::EventEngine engine(tree.n, params);
    routing::ScatterProtocol protocol(tree, order, M);
    return engine.run(protocol).completion_time;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 7));
    const double M = options.get_double("msg", 1024);
    bench::banner("Ablation (Fig. 8 mechanism)",
                  "BST advantage vs overlap factor, n = " + std::to_string(n));

    const trees::SpanningTree sbt = trees::build_sbt(n, 0);
    const trees::SpanningTree bst = trees::build_bst(n, 0);
    const auto sbt_order = routing::descending_dest_order(sbt);
    const auto bst_order =
        routing::cyclic_dest_order(bst, routing::SubtreeOrder::depth_first);

    const std::vector<std::string> header = {"overlap", "SBT (sim)",
                                             "BST (sim)", "BST advantage"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (const double overlap : {0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4}) {
        const double sbt_time = run_scatter(sbt, sbt_order, M, overlap);
        const double bst_time = run_scatter(bst, bst_order, M, overlap);
        std::vector<std::string> row = {
            format_fixed(overlap, 2), format_seconds(sbt_time),
            format_seconds(bst_time),
            format_fixed(100.0 * (sbt_time - bst_time) / sbt_time, 1) + " %"};
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nAt overlap = 0 the SBT and BST coincide (the paper's "
              "analytic claim); the gap\ngrows with the overlap factor — "
              "evidence for the paper's explanation of Figure 8.");
    return 0;
}
