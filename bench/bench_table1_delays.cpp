// Table 1 — propagation delays: routing steps until the first packet
// (per distinct stream) reaches the farthest node, for each broadcast graph
// and port model. The "measured" columns come from executing the actual
// routing schedules in the cycle-accurate simulator; "model" columns are the
// paper's closed forms.
//
// Usage: bench_table1_delays [--dim N] [--csv path]
#include "bench_util.hpp"

#include "model/broadcast_model.hpp"
#include "routing/broadcast.hpp"
#include "trees/hp.hpp"
#include "trees/sbt.hpp"
#include "trees/tcbt.hpp"

#include <cstdio>

namespace {

using namespace hcube;
using model::Algorithm;
using sim::PortModel;

std::uint32_t measured_delay(Algorithm algo, PortModel port, hc::dim_t n) {
    const hc::node_t s = 0;
    // One packet per stream: the paper's "broadcast one packet" reading for
    // HP/SBT/TCBT; for the MSBT, one packet per subtree (log N packets).
    routing::Schedule schedule;
    switch (algo) {
    case Algorithm::hp:
        schedule = routing::paced_broadcast(
            trees::build_hamiltonian_path(n, s,
                                          trees::HpVariant::source_at_end),
            1, port);
        break;
    case Algorithm::sbt:
        schedule = (port == PortModel::all_port)
                       ? routing::paced_broadcast(trees::build_sbt(n, s), 1,
                                                  port)
                       : routing::port_oriented_broadcast(
                             trees::build_sbt(n, s), 1);
        break;
    case Algorithm::tcbt:
        schedule = routing::paced_broadcast(trees::build_tcbt(n, s), 1, port);
        break;
    case Algorithm::msbt:
        schedule = routing::msbt_broadcast(n, s, 1, port);
        break;
    case Algorithm::bst:
        break;
    }
    return sim::execute_schedule(schedule, port).makespan;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 6));
    bench::banner("Table 1", "propagation delays, n = " + std::to_string(n) +
                                 " (N = " + std::to_string(1 << n) + ")");

    const std::vector<std::string> header = {
        "Algorithm",        "1 s or r (model)", "1 s or r (sim)",
        "1 s and r (model)", "1 s and r (sim)",  "all ports (model)",
        "all ports (sim)"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (const auto algo : {Algorithm::hp, Algorithm::sbt, Algorithm::tcbt,
                            Algorithm::msbt}) {
        std::vector<std::string> row{std::string(model::to_string(algo))};
        for (const auto port : {PortModel::one_port_half_duplex,
                                PortModel::one_port_full_duplex,
                                PortModel::all_port}) {
            row.push_back(
                std::to_string(model::propagation_delay(algo, port, n)));
            row.push_back(std::to_string(measured_delay(algo, port, n)));
        }
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nNotes: HP 'model' is the paper's N-1; the full-duplex "
              "pipeline measures N-2 (see DESIGN.md).\n"
              "TCBT half-duplex at one packet measures 2logN-2, matching the "
              "paper exactly.");
    return 0;
}
