// Ablation — §5.2's transmission-order choice for BST scatter: depth-first
// versus reversed breadth-first within each subtree. The paper argues
// most-remote-first ordering makes the root the last finisher (lemma 4.2);
// depth-first is what the iPSC implementation used for its smaller tables.
// This bench measures the completion-cycle difference under both one-port
// and all-port models.
//
// Usage: bench_ablation_subtree_order [--max-dim N] [--csv path]
#include "bench_util.hpp"

#include "routing/scatter.hpp"
#include "trees/bst.hpp"

#include <cstdio>

namespace {

using namespace hcube;

std::uint32_t run(const trees::SpanningTree& tree,
                  routing::SubtreeOrder order, bool all_port) {
    if (all_port) {
        const auto schedule = routing::scatter_all_port(
            tree, routing::per_subtree_dest_orders(tree, order), 1);
        return sim::execute_schedule(schedule, sim::PortModel::all_port)
            .makespan;
    }
    const auto schedule = routing::scatter_one_port(
        tree, routing::cyclic_dest_order(tree, order), 1);
    return sim::execute_schedule(schedule,
                                 sim::PortModel::one_port_full_duplex)
        .makespan;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto max_dim =
        static_cast<hc::dim_t>(options.get_int("max-dim", 9));
    bench::banner("Ablation (§5.2 transmission order)",
                  "BST scatter: depth-first vs reversed breadth-first");

    const std::vector<std::string> header = {
        "dim", "1-port DF", "1-port revBF", "all-port DF", "all-port revBF"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (hc::dim_t n = 3; n <= max_dim; ++n) {
        const trees::SpanningTree tree = trees::build_bst(n, 0);
        std::vector<std::string> row = {
            std::to_string(n),
            std::to_string(run(tree, routing::SubtreeOrder::depth_first,
                               false)),
            std::to_string(run(
                tree, routing::SubtreeOrder::reverse_breadth_first, false)),
            std::to_string(run(tree, routing::SubtreeOrder::depth_first,
                               true)),
            std::to_string(run(
                tree, routing::SubtreeOrder::reverse_breadth_first, true))};
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nBoth orders deliver correctly (tests); reversed "
              "breadth-first trims the completion\ntail because the last "
              "packets emitted travel one hop — the lemma 4.2 argument.");
    return 0;
}
