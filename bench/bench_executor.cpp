// Throughput benchmark for the schedule-execution engine: validated
// sends/second across n = nmin..nmax for SBT/MSBT/BST broadcast and scatter
// schedules, under the flat engine (sim::execute_schedule) and, up to
// --legacy-nmax, the pre-rewrite map/set-based executor kept verbatim in
// legacy_executor.hpp. Schedule generation is excluded from the timed region.
//
//   bench_executor --nmin 7 --nmax 13 [--packets 8] [--pps 2] [--ppd 1]
//                  [--min-time 0.2] [--legacy-nmax 13 | --no-legacy]
//                  [--workload <substring>] [--tracking auto|dense|sparse]
//                  [--json <path>]
#include "bench_util.hpp"
#include "legacy_executor.hpp"

#include "common/json.hpp"
#include "routing/broadcast.hpp"
#include "routing/scatter.hpp"
#include "sim/cycle.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace {

using hcube::CliOptions;
using hcube::hc::dim_t;
using hcube::hc::node_t;
using hcube::sim::DeliveryTracking;
using hcube::sim::packet_t;
using hcube::sim::PortModel;
using hcube::sim::Schedule;

struct Workload {
    std::string name;
    PortModel model;
    std::function<Schedule(dim_t)> generate;
};

struct Result {
    std::string workload;
    dim_t n = 0;
    std::uint64_t sends = 0;
    std::uint32_t makespan = 0;
    bool sparse = false;
    double flat_rate = 0.0;   // validated sends / second
    double legacy_rate = 0.0; // 0 when the legacy run was skipped
};

const char* model_name(PortModel model) {
    switch (model) {
    case PortModel::one_port_half_duplex:
        return "half";
    case PortModel::one_port_full_duplex:
        return "full";
    case PortModel::all_port:
        return "all";
    }
    return "?";
}

/// Times `run()` (which must return a checksum so the work is observable)
/// until at least `min_time` seconds have elapsed; returns seconds per call.
double time_per_call(const std::function<std::uint64_t()>& run,
                     double min_time, std::uint64_t& sink) {
    using clock = std::chrono::steady_clock;
    std::uint64_t calls = 0;
    double elapsed = 0.0;
    std::uint64_t batch = 1;
    while (elapsed < min_time && calls < 100000) {
        const auto start = clock::now();
        for (std::uint64_t i = 0; i < batch; ++i) {
            sink += run();
        }
        elapsed += std::chrono::duration<double>(clock::now() - start).count();
        calls += batch;
        batch *= 2;
    }
    return elapsed / static_cast<double>(calls);
}

std::vector<Workload> make_workloads(packet_t packets, packet_t pps,
                                     packet_t ppd) {
    namespace routing = hcube::routing;
    namespace trees = hcube::trees;
    using routing::SubtreeOrder;
    return {
        {"sbt_port_bcast", PortModel::one_port_full_duplex,
         [packets](dim_t n) {
             return routing::port_oriented_broadcast(trees::build_sbt(n, 0),
                                                     packets);
         }},
        {"sbt_paced_allport", PortModel::all_port,
         [packets](dim_t n) {
             return routing::paced_broadcast(trees::build_sbt(n, 0), packets,
                                             PortModel::all_port);
         }},
        {"msbt_fdx", PortModel::one_port_full_duplex,
         [pps](dim_t n) {
             return routing::msbt_broadcast(n, 0, pps,
                                            PortModel::one_port_full_duplex);
         }},
        {"msbt_half", PortModel::one_port_half_duplex,
         [pps](dim_t n) {
             return routing::msbt_broadcast(n, 0, pps,
                                            PortModel::one_port_half_duplex);
         }},
        {"msbt_allport", PortModel::all_port,
         [pps](dim_t n) {
             return routing::msbt_broadcast(n, 0, pps, PortModel::all_port);
         }},
        {"bst_scatter_oneport", PortModel::one_port_full_duplex,
         [ppd](dim_t n) {
             const trees::SpanningTree tree = trees::build_bst(n, 0);
             return routing::scatter_one_port(
                 tree,
                 routing::cyclic_dest_order(
                     tree, SubtreeOrder::reverse_breadth_first),
                 ppd);
         }},
        {"sbt_scatter_allport", PortModel::all_port,
         [ppd](dim_t n) {
             const trees::SpanningTree tree = trees::build_sbt(n, 0);
             return routing::scatter_all_port(
                 tree,
                 routing::per_subtree_dest_orders(
                     tree, SubtreeOrder::reverse_breadth_first),
                 ppd);
         }},
    };
}

bool write_json(const std::string& path, const std::vector<Result>& rows) {
    hcube::JsonArrayWriter json(path);
    if (!json.ok()) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        return false;
    }
    for (const Result& r : rows) {
        json.begin_row();
        json.field("workload", r.workload);
        json.field("n", r.n);
        json.field("sends", r.sends);
        json.field("makespan", r.makespan);
        json.field("sparse", r.sparse);
        json.field("flat_sends_per_sec", r.flat_rate);
        if (r.legacy_rate > 0.0) {
            json.field("legacy_sends_per_sec", r.legacy_rate);
            json.field("speedup", r.flat_rate / r.legacy_rate);
        }
        json.end_row();
    }
    return json.close();
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const dim_t nmin = static_cast<dim_t>(options.get_int("nmin", 7));
    const dim_t nmax = static_cast<dim_t>(options.get_int("nmax", 13));
    const auto packets =
        static_cast<packet_t>(options.get_int("packets", 8));
    const auto pps = static_cast<packet_t>(options.get_int("pps", 2));
    const auto ppd = static_cast<packet_t>(options.get_int("ppd", 1));
    const double min_time = options.get_double("min-time", 0.2);
    const dim_t legacy_nmax = options.has("no-legacy")
                                  ? -1
                                  : static_cast<dim_t>(
                                        options.get_int("legacy-nmax", 13));
    const std::string filter = options.get_string("workload", "");
    const std::string tracking_name =
        options.get_string("tracking", "auto");
    const DeliveryTracking tracking =
        tracking_name == "dense"    ? DeliveryTracking::dense
        : tracking_name == "sparse" ? DeliveryTracking::sparse
                                    : DeliveryTracking::automatic;

    hcube::bench::banner(
        "Executor throughput",
        "validated sends/second, flat engine vs the pre-rewrite executor");
    std::printf("%-20s %-5s %3s %12s %9s %13s %13s %8s\n", "workload",
                "model", "n", "sends", "makespan", "flat snd/s",
                "legacy snd/s", "speedup");

    std::vector<Result> rows;
    std::uint64_t sink = 0;
    for (const Workload& w : make_workloads(packets, pps, ppd)) {
        if (!filter.empty() && w.name.find(filter) == std::string::npos) {
            continue;
        }
        for (dim_t n = nmin; n <= nmax; ++n) {
            const Schedule schedule = w.generate(n);

            Result row;
            row.workload = w.name;
            row.n = n;

            const double flat_sec = time_per_call(
                [&] {
                    const auto stats = hcube::sim::execute_schedule(
                        schedule, w.model, tracking);
                    row.sends = stats.total_sends;
                    row.makespan = stats.makespan;
                    row.sparse = stats.delivery_cycle.is_sparse();
                    return std::uint64_t{stats.makespan} + stats.total_sends;
                },
                min_time, sink);
            row.flat_rate = static_cast<double>(row.sends) / flat_sec;

            if (n <= legacy_nmax) {
                const double legacy_sec = time_per_call(
                    [&] {
                        const auto stats =
                            hcube::bench::legacy::execute_schedule(schedule,
                                                                   w.model);
                        return std::uint64_t{stats.makespan} +
                               stats.total_sends;
                    },
                    min_time, sink);
                row.legacy_rate =
                    static_cast<double>(row.sends) / legacy_sec;
            }

            std::printf("%-20s %-5s %3d %12llu %9u %13.3g %13s %8s\n",
                        row.workload.c_str(), model_name(w.model), n,
                        static_cast<unsigned long long>(row.sends),
                        row.makespan, row.flat_rate,
                        row.legacy_rate > 0.0
                            ? std::to_string(
                                  static_cast<long long>(row.legacy_rate))
                                  .c_str()
                            : "-",
                        row.legacy_rate > 0.0
                            ? (std::to_string(static_cast<long long>(
                                   std::llround(row.flat_rate /
                                                row.legacy_rate))) +
                               "x")
                                  .c_str()
                            : "-");
            std::fflush(stdout);
            rows.push_back(row);
        }
    }

    const std::string json_path = options.get_string("json", "");
    if (!json_path.empty() && write_json(json_path, rows)) {
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    if (sink == 0) {
        std::printf("(empty run)\n");
    }
    return 0;
}
