// Wall-clock benchmark of the metrics plane (hcube::obs): a heavy-tailed
// multi-tenant replay through the collective service, with per-tenant
// latency recovered from the live obs registry and cross-checked against
// an exact client-side sorted-vector reference.
//
// The workload models the mixed fleet a long-running service sees: three
// light tenants issuing small broadcasts in bursts (deterministic
// burst-pause arrival pattern), plus one slow consumer whose requests are
// an order of magnitude heavier — the tenant that drags the tail. Every
// request is byte-verified; a row with "verified": false fails this
// binary (exit 1) and the CI grep gate.
//
// Gates, per tenant:
//   * the obs histogram count equals the replayed request count exactly
//     (no sample lost or double-billed);
//   * recovered p50/p95/p99 never exceed the client-side reference by
//     more than bucket error (1/32) + rounding slack (the service's
//     internal span is a strict subset of the client's, so same-rank
//     order statistics are ordered), and the median additionally stays
//     above half the client's (tail percentiles get no lower bound:
//     post-fulfillment scheduler wake-up delay is unbounded there);
//   * p99 stays under --p99-bound ms (the regression bound CI gates on).
//
// The overhead row measures the recording primitives themselves
// (counter inc, histogram record, registry snapshot) so the documented
// cost in docs/OBSERVABILITY.md stays an measured number.
//
//   bench_obs [--n 4] [--requests 240] [--burst 6] [--p99-bound 400]
//             [--json <path>] [--trace-out <path>]
//
// --trace-out drops registry snapshots as chrome-trace counter events
// ("ph":"C") sampled once per burst round — open in Perfetto to watch
// queue depth and per-tenant throughput move through the replay.
#include "bench_util.hpp"

#include "common/json.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "svc/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace {

using hcube::CliOptions;
using hcube::hc::dim_t;
using hcube::hc::node_t;
using hcube::sim::packet_t;
using namespace hcube::svc;

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Exact nearest-rank percentile on the client-side sample — the same
/// ceil(p * n) rank convention HistogramSnapshot::percentile uses, so the
/// two views compare the SAME order statistic. With that alignment the
/// bracket gate is sound: each request's obs span sits inside its client
/// span, so the k-th smallest obs latency never exceeds the k-th smallest
/// client latency.
double ref_percentile(std::vector<double> values, double p) {
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const auto rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               p * static_cast<double>(values.size()))));
    return values[std::min(rank, values.size()) - 1];
}

Signature make_sig(Op op, Family family, dim_t n, node_t root,
                   packet_t packets, std::uint32_t block) {
    Signature s;
    s.op = op;
    s.family = family;
    s.n = n;
    s.root = root;
    s.packets = packets;
    s.block_elems = block;
    return s;
}

struct Tenant {
    std::uint32_t client_id = 0;
    const char* label = "";
    std::vector<Signature> mix;
    int requests = 0;
    /// Pause between bursts, which is what makes arrivals bursty rather
    /// than uniform (the slow consumer pauses longest: its queue drains
    /// between volleys, so its tail is execute-dominated, not queueing).
    int pause_us = 0;
};

/// The replayed fleet: three light tenants, one slow consumer. The slow
/// tenant's operations move ~16x the bytes per request — the heavy tail.
std::vector<Tenant> fleet(dim_t n, int requests) {
    const auto np = static_cast<packet_t>(n);
    std::vector<Tenant> tenants;
    tenants.push_back(
        {1, "light-bcast",
         {make_sig(Op::broadcast, Family::sbt, n, 0, 2, 32),
          make_sig(Op::broadcast, Family::sbt, n, 1, 2, 32)},
         requests, 200});
    tenants.push_back(
        {2, "light-scatter",
         {make_sig(Op::scatter, Family::bst, n, 0, 1, 32)},
         requests, 350});
    tenants.push_back(
        {3, "light-reduce",
         {make_sig(Op::reduce, Family::sbt, n, 0, 2, 32)},
         requests, 500});
    tenants.push_back(
        {4, "slow-consumer",
         {make_sig(Op::broadcast, Family::msbt, n, 0, 4 * np, 128),
          make_sig(Op::alltoall, Family::sbt, n, 0, 1, 64)},
         requests / 3, 2'000});
    return tenants;
}

struct TenantMeasured {
    const Tenant* tenant = nullptr;
    std::vector<double> client_ms; ///< exact client-side latencies
    double obs_p50_ms = 0;
    double obs_p95_ms = 0;
    double obs_p99_ms = 0;
    std::uint64_t obs_count = 0;
    bool verified = true; ///< every response byte-verified
    bool gated = true;    ///< count + bracket + bound gates
};

/// Replays one tenant: bursts of `burst` back-to-back requests separated
/// by the tenant's pause. Returns the client-side latency series.
void replay_tenant(Service& service, const Tenant& t, int burst,
                   TenantMeasured& out) {
    out.tenant = &t;
    out.client_ms.reserve(static_cast<std::size_t>(t.requests));
    for (int i = 0; i < t.requests; ++i) {
        const Signature& sig =
            t.mix[static_cast<std::size_t>(i) % t.mix.size()];
        const double t0 = now_seconds();
        const Response r = service.run(Request{sig, t.client_id});
        out.client_ms.push_back((now_seconds() - t0) * 1e3);
        if (r.status != Status::ok || !r.stats.verified) {
            out.verified = false;
        }
        if ((i + 1) % burst == 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(t.pause_us));
        }
    }
}

/// Pulls the tenant's histogram delta out of the registry and applies the
/// three per-tenant gates.
void judge_tenant(TenantMeasured& m,
                  const hcube::obs::RegistrySnapshot& base,
                  const hcube::obs::RegistrySnapshot& now,
                  double p99_bound_ms) {
    const std::string name = "svc.tenant." +
                             std::to_string(m.tenant->client_id) +
                             ".op_ns";
    const hcube::obs::MetricSnapshot* metric = now.find(name);
    if (metric == nullptr) {
        m.gated = false;
        return;
    }
    hcube::obs::HistogramSnapshot hist = metric->hist;
    if (const hcube::obs::MetricSnapshot* b = base.find(name)) {
        hist.subtract(b->hist);
    }
    m.obs_count = hist.count;
    m.obs_p50_ms = static_cast<double>(hist.percentile(0.50)) / 1e6;
    m.obs_p95_ms = static_cast<double>(hist.percentile(0.95)) / 1e6;
    m.obs_p99_ms = static_cast<double>(hist.percentile(0.99)) / 1e6;

    // Gate 1: exactly one histogram sample per replayed request.
    m.gated = hist.count == m.client_ms.size();
    // Gate 2: the recovered percentiles sit under the exact client-side
    // reference. The service bills enqueue -> fulfilled, the client
    // measures submit -> future.get: the obs span is inside the client's,
    // so the k-th smallest obs latency never exceeds the k-th smallest
    // client latency and above the reference only bucket error (1/32)
    // plus rounding slack is allowed — at every percentile. The gap
    // *below* the reference is scheduler wake-up delay between
    // set_value and the client thread resuming, which is unbounded at
    // the tail on a loaded machine, so a lower bracket is only applied
    // at the median (half the requests would have to eat > ref/2 of
    // wake-up delay to trip it).
    const struct {
        double p;
        double obs;
    } checks[] = {{0.50, m.obs_p50_ms},
                  {0.95, m.obs_p95_ms},
                  {0.99, m.obs_p99_ms}};
    for (const auto& [p, obs] : checks) {
        const double ref = ref_percentile(m.client_ms, p);
        const double upper = ref * (1.0 + 1.0 / 32.0) + 0.5;
        const double lower = p == 0.50 ? ref * 0.5 - 0.5 : 0.0;
        if (obs > upper || obs < lower) {
            std::fprintf(stderr,
                         "tenant %u p%.0f: obs %.3f ms outside "
                         "[%.3f, %.3f] (client ref %.3f ms)\n",
                         m.tenant->client_id, p * 100, obs, lower, upper,
                         ref);
            m.gated = false;
        }
    }
    // Gate 3: the regression bound.
    if (m.obs_p99_ms > p99_bound_ms) {
        std::fprintf(stderr, "tenant %u p99 %.3f ms exceeds bound %.1f\n",
                     m.tenant->client_id, m.obs_p99_ms, p99_bound_ms);
        m.gated = false;
    }
}

struct Overhead {
    double counter_inc_ns = 0;
    double hist_record_ns = 0;
    double snapshot_us = 0;
};

/// Cost of the recording primitives themselves, measured hot (the numbers
/// docs/OBSERVABILITY.md quotes).
Overhead measure_overhead() {
    constexpr int kOps = 2'000'000;
    hcube::obs::Registry reg;
    hcube::obs::Counter& c = reg.counter("bench.counter");
    hcube::obs::Histogram& h = reg.histogram("bench.hist");
    for (int i = 0; i < 64; ++i) {
        reg.counter("bench.filler." + std::to_string(i)).inc();
    }
    Overhead o;
    double t0 = now_seconds();
    for (int i = 0; i < kOps; ++i) {
        c.inc();
    }
    o.counter_inc_ns = (now_seconds() - t0) * 1e9 / kOps;
    t0 = now_seconds();
    for (int i = 0; i < kOps; ++i) {
        h.record(static_cast<std::uint64_t>(i));
    }
    o.hist_record_ns = (now_seconds() - t0) * 1e9 / kOps;
    constexpr int kSnaps = 200;
    t0 = now_seconds();
    for (int i = 0; i < kSnaps; ++i) {
        const hcube::obs::RegistrySnapshot snap = reg.snapshot();
        if (snap.metrics.empty()) {
            std::abort(); // keep the loop un-elidable
        }
    }
    o.snapshot_us = (now_seconds() - t0) * 1e6 / kSnaps;
    return o;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<dim_t>(options.get_int("n", 4));
    const int requests =
        static_cast<int>(options.get_int("requests", 240));
    const int burst = static_cast<int>(options.get_int("burst", 6));
    const double p99_bound_ms =
        static_cast<double>(options.get_int("p99-bound", 400));
    const std::string json_path = options.get_string("json", "");
    const std::string trace_path = options.get_string("trace-out", "");

    hcube::bench::banner(
        "hcube::obs live metrics",
        "per-tenant latency recovery under a heavy-tailed multi-tenant "
        "replay");

    std::unique_ptr<hcube::JsonArrayWriter> json;
    if (!json_path.empty()) {
        json = std::make_unique<hcube::JsonArrayWriter>(json_path);
    }
    std::unique_ptr<hcube::JsonArrayWriter> trace;
    if (!trace_path.empty()) {
        trace = std::make_unique<hcube::JsonArrayWriter>(trace_path);
        if (!trace->ok()) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         trace_path.c_str());
            return 1;
        }
    }

    ServiceParams params;
    params.session.verify = hcube::rt::Verify::first;
    Service service(n, params);
    std::vector<Tenant> tenants = fleet(n, requests);
    // Warm-up: compile every plan once so the replay measures the steady
    // state (the cache miss would otherwise be every tenant's max).
    for (const Tenant& t : tenants) {
        for (const Signature& sig : t.mix) {
            (void)service.run(Request{sig, t.client_id});
        }
    }
    service.drain();

    const hcube::obs::RegistrySnapshot base =
        hcube::obs::registry().snapshot();
    const double begin = now_seconds();

    // One thread per tenant, all replaying concurrently — the slow
    // consumer's volleys queue behind the light tenants' bursts, which is
    // what per-tenant attribution has to untangle.
    std::vector<TenantMeasured> measured(tenants.size());
    std::atomic<bool> sampling{trace != nullptr};
    std::thread sampler;
    if (trace != nullptr) {
        sampler = std::thread([&] {
            std::uint32_t tick = 0;
            while (sampling.load()) {
                hcube::obs::RegistrySnapshot snap =
                    hcube::obs::registry().snapshot();
                snap.subtract(base);
                hcube::obs::append_chrome_counter_events(
                    *trace, snap, /*pid=*/1,
                    (now_seconds() - begin) * 1e6);
                ++tick;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        });
    }
    {
        std::vector<std::thread> threads;
        for (std::size_t i = 0; i < tenants.size(); ++i) {
            threads.emplace_back([&, i] {
                replay_tenant(service, tenants[i], burst, measured[i]);
            });
        }
        for (std::thread& t : threads) {
            t.join();
        }
    }
    const double elapsed = now_seconds() - begin;
    service.drain();
    if (sampler.joinable()) {
        sampling.store(false);
        sampler.join();
    }
    const hcube::obs::RegistrySnapshot now =
        hcube::obs::registry().snapshot();

    bool verified = true;
    std::printf("%-16s %6s %9s %9s %9s %9s %9s %9s\n", "tenant", "reqs",
                "p50 ms", "p95 ms", "p99 ms", "ref p50", "ref p99",
                "verified");
    for (TenantMeasured& m : measured) {
        judge_tenant(m, base, now, p99_bound_ms);
        const bool row_ok = m.verified && m.gated;
        verified = verified && row_ok;
        std::printf("%-16s %6zu %9.3f %9.3f %9.3f %9.3f %9.3f %9s\n",
                    m.tenant->label, m.client_ms.size(), m.obs_p50_ms,
                    m.obs_p95_ms, m.obs_p99_ms,
                    ref_percentile(m.client_ms, 0.50),
                    ref_percentile(m.client_ms, 0.99),
                    row_ok ? "yes" : "NO");
        if (json) {
            json->begin_row();
            json->field("mode", "tenant_latency");
            json->field("tenant", m.tenant->label);
            json->field("client_id", m.tenant->client_id);
            json->field("n", n);
            json->field("requests",
                        static_cast<std::uint64_t>(m.client_ms.size()));
            json->field("samples", m.obs_count);
            json->field("p50_ms", m.obs_p50_ms);
            json->field("p95_ms", m.obs_p95_ms);
            json->field("p99_ms", m.obs_p99_ms);
            json->field("client_p50_ms",
                        ref_percentile(m.client_ms, 0.50));
            json->field("client_p99_ms",
                        ref_percentile(m.client_ms, 0.99));
            json->field("p99_bound_ms", p99_bound_ms);
            json->field("verified", row_ok);
            json->end_row();
        }
    }

    std::size_t total = 0;
    for (const TenantMeasured& m : measured) {
        total += m.client_ms.size();
    }
    std::printf("\n%zu requests over %zu tenants in %.2f s (%.1f ops/s); "
                "queue p99 %.3f ms, execute p99 %.3f ms\n",
                total, tenants.size(), elapsed,
                elapsed > 0 ? static_cast<double>(total) / elapsed : 0,
                [&] {
                    hcube::obs::HistogramSnapshot h =
                        now.find("svc.queue_wait_ns")->hist;
                    if (const auto* b = base.find("svc.queue_wait_ns")) {
                        h.subtract(b->hist);
                    }
                    return static_cast<double>(h.percentile(0.99)) / 1e6;
                }(),
                [&] {
                    hcube::obs::HistogramSnapshot h =
                        now.find("svc.execute_ns")->hist;
                    if (const auto* b = base.find("svc.execute_ns")) {
                        h.subtract(b->hist);
                    }
                    return static_cast<double>(h.percentile(0.99)) / 1e6;
                }());

    const Overhead o = measure_overhead();
    std::printf("recording overhead: counter inc %.1f ns, histogram "
                "record %.1f ns, registry snapshot %.1f us\n",
                o.counter_inc_ns, o.hist_record_ns, o.snapshot_us);
    if (json) {
        json->begin_row();
        json->field("mode", "overhead");
        json->field("counter_inc_ns", o.counter_inc_ns);
        json->field("hist_record_ns", o.hist_record_ns);
        json->field("snapshot_us", o.snapshot_us);
        // The micro costs have no percentile semantics; the fields exist
        // so one grep covers every row of the file.
        json->field("p99_ms", 0.0);
        json->field("verified", o.counter_inc_ns < 100.0 &&
                                    o.hist_record_ns < 500.0);
        json->end_row();
        verified = verified && o.counter_inc_ns < 100.0 &&
                   o.hist_record_ns < 500.0;
    }

    if (trace && !trace->close()) {
        std::fprintf(stderr, "failed writing %s\n", trace_path.c_str());
        return 1;
    }
    if (json && !json->close()) {
        std::fprintf(stderr, "failed writing %s\n", json_path.c_str());
        return 1;
    }
    if (!verified) {
        std::fprintf(stderr, "VERIFICATION FAILED\n");
        return 1;
    }
    std::printf("\nall tenants byte-verified, percentiles cross-checked\n");
    return 0;
}
