// Ablation — §3.4's remark: "broadcasting through a Hamiltonian Path on a
// hypercube may be faster than broadcasting based on the SBT or even the
// TCBT, depending on the values of M, t_c, τ and N."
//
// For each cube size and message size (at the iPSC's t_c), this bench finds
// which algorithm's T_min is smallest as the start-up time τ varies, and
// prints the winner map. The HP's strength is its 1-cycle-per-packet
// pipelining (no log N bandwidth loss) — it wins exactly where transfer
// dominates and the cube is small; the MSBT, which pipelines *and* uses all
// dimensions, dominates everywhere it is allowed.
//
// Usage: bench_crossover [--csv path]
#include "bench_util.hpp"

#include "model/broadcast_model.hpp"

#include <cstdio>

namespace {

using namespace hcube;
using model::Algorithm;

/// The cheapest of HP / SBT / TCBT under one-port full duplex (MSBT listed
/// separately — it wins the whole map).
Algorithm winner(double M, hc::dim_t n, const model::CommParams& params) {
    const auto port = sim::PortModel::one_port_full_duplex;
    // The SBT has a single one-port algorithm (the half-duplex row).
    const double sbt = model::broadcast_tmin(
        Algorithm::sbt, sim::PortModel::one_port_half_duplex, M, n, params);
    const double hp = model::broadcast_tmin(Algorithm::hp, port, M, n, params);
    const double tcbt =
        (n >= 3) ? model::broadcast_tmin(Algorithm::tcbt, port, M, n, params)
                 : sbt + 1;
    if (hp <= sbt && hp <= tcbt) {
        return Algorithm::hp;
    }
    return (tcbt < sbt) ? Algorithm::tcbt : Algorithm::sbt;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    bench::banner("Ablation (§3.4 crossovers)",
                  "cheapest non-MSBT broadcast vs (n, τ) at fixed M, t_c");

    const double tc = model::ipsc_params().tc;
    const double M = 61440;
    const std::vector<double> taus = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2};

    std::vector<std::string> header = {"n \\ tau"};
    for (const double tau : taus) {
        header.push_back(format_seconds(tau));
    }
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (hc::dim_t n = 2; n <= 10; ++n) {
        std::vector<std::string> row = {std::to_string(n)};
        for (const double tau : taus) {
            row.emplace_back(model::to_string(winner(M, n, {tau, tc})));
        }
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);

    // Quantify one cell: n = 3, tiny tau — the HP's pipelining wins.
    const model::CommParams cheap_startup{1e-6, tc};
    std::printf("\nexample (n = 3, tau = 1 us): HP %.4f s vs SBT %.4f s vs "
                "TCBT %.4f s\n",
                model::broadcast_tmin(Algorithm::hp,
                                      sim::PortModel::one_port_full_duplex, M,
                                      3, cheap_startup),
                model::broadcast_tmin(Algorithm::sbt,
                                      sim::PortModel::one_port_half_duplex, M,
                                      3, cheap_startup),
                model::broadcast_tmin(Algorithm::tcbt,
                                      sim::PortModel::one_port_full_duplex, M,
                                      3, cheap_startup));
    std::puts("\nHP wins at small n / small tau (pure pipelining, delay "
              "N-1 amortized); the SBT\ntakes over as tau or n grows — the "
              "paper's \"interestingly, ...\" observation.\nThe MSBT beats "
              "all three everywhere (Table 4), which is the paper's point.");
    return 0;
}
