// Recovery-latency and degraded-throughput benchmark of the self-healing
// collectives (hcube::ft): for each op and engine, deterministic link
// kills are injected mid-stream and the full inject → detect → recover
// loop runs to byte-verified completion against the cached fault-free
// oracle. Per row:
//   * oracle ms    — the fault-free ground-truth run (paid once per op,
//                    amortized across the fault sweep),
//   * recovery ms  — failed attempts + replanning, the price of healing,
//   * final ms     — the clean run on the replanned schedule,
//   * GB/s         — delivered throughput of that final run: with faults
//                    this is the *degraded* figure (the MSBT loses one
//                    edge-disjoint tree per dead link and pipelines
//                    deeper; the SBT family swaps in a replacement tree).
// `verified` is the differential check — the recovered run's contract
// memory byte-identical to the oracle's — and the binary exits non-zero if
// any row fails it (CI greps the JSON for `"verified": false` as well).
//
// Faults are chosen deterministically: the k kills land on evenly spaced
// links of the schedule's own link set, each at half its push count, so
// every run of this benchmark injects the identical scenario.
//
//   bench_fault [--nmin 3] [--nmax 6] [--pps 4] [--ppd 2] [--block 64]
//               [--threads 0] [--faults-max 2] [--json <path>]
//               [--trace-out <path>]
//
// --trace-out writes one chrome://tracing process per (op, n, engine,
// faults) configuration; the aborted attempt and the recovered re-run land
// in the same timeline, so the detection stall and the replan gap are
// directly visible.
#include "bench_util.hpp"

#include "common/json.hpp"
#include "ft/resilient.hpp"
#include "routing/schedule_export.hpp"
#include "rt/tracing.hpp"
#include "trees/sbt.hpp"

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace {

using hcube::CliOptions;
using hcube::hc::dim_t;
using hcube::hc::node_t;
using hcube::sim::packet_t;
using hcube::sim::PortModel;
using hcube::sim::Schedule;

namespace ft = hcube::ft;
namespace rt = hcube::rt;

struct OpCase {
    std::string name;
    std::string op; ///< broadcast | scatter
    std::function<Schedule(dim_t)> generate;
    std::function<ft::RecoveryResult(ft::ResilientComm&, dim_t,
                                     const ft::FaultPlan&)>
        run;
};

struct Row {
    std::string op;
    std::string engine;
    dim_t n = 0;
    std::uint32_t threads = 0;
    std::uint32_t faults = 0;
    std::uint32_t attempts = 0;
    std::uint32_t dropped_trees = 0;
    std::uint64_t payload_bytes = 0;
    double oracle_ms = 0;
    double recovery_ms = 0;
    double final_ms = 0;
    double gbps = 0;
    bool verified = false;
};

/// The k evenly spaced directed links of the schedule's own link set, each
/// killed at half its push count — the same scenario on every run.
ft::FaultPlan spaced_kills(const Schedule& schedule, std::uint32_t k) {
    std::map<std::pair<node_t, node_t>, std::uint32_t> counts;
    for (const auto& send : schedule.sends) {
        ++counts[{send.from, send.to}];
    }
    std::vector<std::pair<ft::DirectedLink, std::uint32_t>> links;
    links.reserve(counts.size());
    for (const auto& [link, pushes] : counts) {
        links.push_back({{link.first, link.second}, pushes});
    }
    ft::FaultPlan plan;
    for (std::uint32_t f = 0; f < k; ++f) {
        const auto& [link, pushes] =
            links[(static_cast<std::size_t>(f) + 1) * links.size() /
                  (static_cast<std::size_t>(k) + 1)];
        plan.kill_link(link.from, link.to, pushes / 2);
    }
    return plan;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto nmin = static_cast<dim_t>(options.get_int("nmin", 3));
    const auto nmax = static_cast<dim_t>(options.get_int("nmax", 6));
    const auto pps = static_cast<packet_t>(options.get_int("pps", 4));
    const auto ppd = static_cast<packet_t>(options.get_int("ppd", 2));
    const auto block =
        static_cast<std::size_t>(options.get_int("block", 64));
    const auto threads =
        static_cast<std::uint32_t>(options.get_int("threads", 0));
    const auto faults_max =
        static_cast<std::uint32_t>(options.get_int("faults-max", 2));
    const std::string json_path = options.get_string("json", "");
    const std::string trace_path = options.get_string("trace-out", "");

    std::unique_ptr<hcube::JsonArrayWriter> trace_json;
    if (!trace_path.empty()) {
        trace_json = std::make_unique<hcube::JsonArrayWriter>(trace_path);
        if (!trace_json->ok()) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         trace_path.c_str());
            return 1;
        }
    }
    std::uint32_t trace_pid = 0;

    hcube::bench::banner(
        "Fault recovery",
        "inject -> detect -> recover, byte-verified against the "
        "fault-free oracle");
    std::printf("  block=%zu doubles, kills at half push count on evenly "
                "spaced links\n\n",
                block);

    const std::vector<OpCase> cases = {
        {"sbt_bcast", "broadcast",
         [pps](dim_t n) {
             return hcube::routing::make_tree_broadcast(
                 hcube::trees::build_sbt(n, 0),
                 hcube::routing::BroadcastDiscipline::paced,
                 static_cast<packet_t>(n) * pps,
                 PortModel::one_port_full_duplex);
         },
         [pps](ft::ResilientComm& comm, dim_t n,
               const ft::FaultPlan& faults) {
             return comm.broadcast_sbt(
                 0, static_cast<packet_t>(n) * pps, faults);
         }},
        {"msbt_bcast", "broadcast",
         [pps](dim_t n) {
             return hcube::routing::make_msbt_broadcast(
                 n, 0, static_cast<packet_t>(n) * pps,
                 PortModel::one_port_full_duplex);
         },
         [pps](ft::ResilientComm& comm, dim_t n,
               const ft::FaultPlan& faults) {
             return comm.broadcast_msbt(
                 0, static_cast<packet_t>(n) * pps, faults);
         }},
        {"sbt_scatter", "scatter",
         [ppd](dim_t n) {
             return hcube::routing::make_tree_scatter(
                 hcube::trees::build_sbt(n, 0),
                 hcube::routing::ScatterPolicy::descending, ppd,
                 PortModel::one_port_full_duplex);
         },
         [ppd](ft::ResilientComm& comm, dim_t,
               const ft::FaultPlan& faults) {
             return comm.scatter_sbt(0, ppd, faults);
         }},
    };

    std::printf("%-12s %3s %-8s %6s %8s %7s %9s %11s %9s %8s %5s\n", "op",
                "n", "engine", "faults", "attempts", "dropped", "oracle ms",
                "recovery ms", "final ms", "GB/s", "ok");

    std::vector<Row> rows;
    for (const OpCase& c : cases) {
        for (dim_t n = nmin; n <= nmax; ++n) {
            const Schedule schedule = c.generate(n);
            for (const rt::Engine engine :
                 {rt::Engine::barrier, rt::Engine::async}) {
                ft::ResilientParams params;
                params.threads = threads;
                params.block_elems = block;
                params.engine = engine;
                ft::ResilientComm comm(n, params);

                std::unique_ptr<rt::TraceRecorder> recorder;
                if (trace_json != nullptr) {
                    recorder = std::make_unique<rt::TraceRecorder>(
                        comm.threads());
                }

                // Fault count 0 measures the healthy baseline (and the
                // oracle build); each further count reuses the cached
                // oracle, so the sweep isolates the cost of healing.
                for (std::uint32_t faults = 0; faults <= faults_max;
                     ++faults) {
                    if (recorder != nullptr) {
                        recorder->reset();
                        // A run the arbiter aborts flushes its partial
                        // timeline here even if recovery then throws.
                        recorder->set_abort_path(trace_path +
                                                 ".abort.json");
                        comm.set_trace(recorder.get());
                    }
                    const ft::RecoveryResult r =
                        c.run(comm, n, spaced_kills(schedule, faults));
                    if (recorder != nullptr) {
                        comm.set_trace(nullptr);
                        recorder->append_chrome_events(
                            *trace_json, trace_pid++,
                            c.name + " n=" + std::to_string(n) + " " +
                                std::string(to_string(engine)) + " f=" +
                                std::to_string(faults));
                    }

                    Row row;
                    row.op = c.name;
                    row.engine = std::string(to_string(engine));
                    row.n = n;
                    row.threads = comm.threads();
                    row.faults = faults;
                    row.attempts = r.attempts;
                    row.dropped_trees =
                        static_cast<std::uint32_t>(r.dropped_trees.size());
                    row.payload_bytes = r.stats.payload_bytes;
                    row.oracle_ms = r.oracle_seconds * 1e3;
                    row.recovery_ms = r.recovery_seconds * 1e3;
                    row.final_ms = r.final_seconds * 1e3;
                    row.gbps = r.final_seconds > 0
                                   ? static_cast<double>(
                                         r.stats.payload_bytes) /
                                         r.final_seconds * 1e-9
                                   : 0.0;
                    row.verified =
                        r.delivered && r.stats.clean() &&
                        (faults == 0
                             ? !r.recovered
                             : r.recovered &&
                                   !r.dead_links.empty());
                    rows.push_back(row);

                    std::printf("%-12s %3d %-8s %6u %8u %7u %9.3f %11.3f "
                                "%9.3f %8.3f %5s\n",
                                row.op.c_str(), n, row.engine.c_str(),
                                row.faults, row.attempts,
                                row.dropped_trees, row.oracle_ms,
                                row.recovery_ms, row.final_ms, row.gbps,
                                row.verified ? "yes" : "NO");
                    std::fflush(stdout);
                }
            }
        }
    }

    if (!json_path.empty()) {
        hcube::JsonArrayWriter json(json_path);
        if (!json.ok()) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         json_path.c_str());
            return 1;
        }
        for (const Row& r : rows) {
            json.begin_row();
            json.field("op", r.op);
            json.field("engine", r.engine);
            json.field("n", r.n);
            json.field("threads", r.threads);
            json.field("block_elems", static_cast<std::uint64_t>(block));
            json.field("faults_injected", r.faults);
            json.field("attempts", r.attempts);
            json.field("dropped_trees", r.dropped_trees);
            json.field("payload_bytes", r.payload_bytes);
            json.field("oracle_ms", r.oracle_ms);
            json.field("recovery_ms", r.recovery_ms);
            json.field("final_ms", r.final_ms);
            json.field("gbytes_per_sec", r.gbps);
            json.field("verified", r.verified);
            json.end_row();
        }
        if (json.close()) {
            std::printf("\nwrote %s\n", json_path.c_str());
        }
    }
    if (trace_json != nullptr && trace_json->close()) {
        std::printf("wrote %s\n", trace_path.c_str());
    }

    bool all_verified = true;
    for (const Row& r : rows) {
        all_verified = all_verified && r.verified;
    }
    if (!all_verified) {
        std::fprintf(stderr,
                     "\nFAILED: some recoveries did not verify\n");
        return 1;
    }
    return 0;
}
