// Figure 6 — measured broadcast time of the SBT and the MSBT for a 60 KB
// message in 1 KB packets, cube dimensions 2..6 (we extend to 7), on the
// simulated iPSC (one send + one receive concurrently).
//
// Usage: bench_fig6_broadcast_60k [--msg bytes] [--packet bytes]
//                                 [--max-dim N] [--csv path]
#include "bench_util.hpp"

#include "model/broadcast_model.hpp"
#include "routing/protocols.hpp"
#include "trees/sbt.hpp"

#include <cstdio>

namespace {

using namespace hcube;

double run_sbt(hc::dim_t n, double M, double B) {
    sim::EventParams params;
    params.model = sim::PortModel::one_port_full_duplex;
    const trees::SpanningTree tree = trees::build_sbt(n, 0);
    sim::EventEngine engine(n, params);
    routing::PortOrientedBroadcast protocol(tree, M, B);
    return engine.run(protocol).completion_time;
}

double run_msbt(hc::dim_t n, double M, double B) {
    sim::EventParams params;
    params.model = sim::PortModel::one_port_full_duplex;
    sim::EventEngine engine(n, params);
    routing::MsbtBroadcastProtocol protocol(n, 0, M, B);
    return engine.run(protocol).completion_time;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const double M = options.get_double("msg", 61440);
    const double B = options.get_double("packet", 1024);
    const auto max_dim =
        static_cast<hc::dim_t>(options.get_int("max-dim", 7));
    bench::banner("Figure 6",
                  "SBT vs MSBT broadcast, M = " + format_fixed(M / 1024, 0) +
                      " KB, B = " + format_fixed(B, 0) + " B, 1 s and r");

    const model::CommParams comm = model::ipsc_params();
    const std::vector<std::string> header = {
        "dim", "SBT (sim)", "SBT (model)", "MSBT (sim)", "MSBT (model)"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (hc::dim_t n = 2; n <= max_dim; ++n) {
        std::vector<std::string> row = {
            std::to_string(n),
            format_seconds(run_sbt(n, M, B)),
            format_seconds(model::broadcast_time(
                model::Algorithm::sbt, sim::PortModel::one_port_half_duplex,
                M, B, n, comm)),
            format_seconds(run_msbt(n, M, B)),
            format_seconds(model::broadcast_time(
                model::Algorithm::msbt, sim::PortModel::one_port_full_duplex,
                M, B, n, comm)),
        };
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nSBT grows ~ log N (whole message per dimension); MSBT stays "
              "nearly flat\n(pipeline over log N edge-disjoint trees) — the "
              "shape of the paper's Figure 6.");
    return 0;
}
