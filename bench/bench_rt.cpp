// Wall-clock benchmark of the threaded collective runtime (hcube::rt):
// delivered GB/s and measured speedup of MSBT-vs-SBT broadcast and
// BST-vs-SBT scatter, with three cross-checks per row —
//   * the runtime's barrier-synchronized cycle count must equal the
//     CycleExecutor makespan of the same schedule exactly,
//   * the makespan is printed next to the model:: closed-form step count
//     (Table 3) where one exists,
//   * every delivered block is checksum-verified and the final memory state
//     is checked against the schedule's delivery matrix.
//
// The timed region is Player::play() only: schedule generation, plan
// compilation and allocation are excluded, mirroring bench_executor.
//
// The default block size (32 doubles) sits in the latency-bound regime
// where per-cycle barrier cost dominates and the cycle-count ratios of
// Table 3 translate into wall-clock speedups; large blocks (--block 1024+)
// move both algorithms into the bandwidth-bound regime where equal bytes
// mean near-equal time — the live form of the paper's B_opt trade-off
// (docs/RUNTIME.md).
//
//   bench_rt --nmin 4 --nmax 8 [--pps 4] [--ppd 2] [--block 32]
//            [--threads T] [--reps 3] [--min-time 0.1] [--json <path>]
#include "bench_util.hpp"

#include "common/json.hpp"
#include "model/broadcast_model.hpp"
#include "routing/schedule_export.hpp"
#include "rt/communicator.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp"
#include "sim/cycle.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace {

using hcube::CliOptions;
using hcube::hc::dim_t;
using hcube::sim::packet_t;
using hcube::sim::PortModel;
using hcube::sim::Schedule;

struct Workload {
    std::string name;
    std::string op;   ///< broadcast | scatter
    std::string algo; ///< sbt | msbt | bst
    std::function<Schedule(dim_t)> generate;
    /// Closed-form routing-step count from model::, 0 if none applies.
    std::function<double(dim_t, packet_t)> model_steps;
};

struct Row {
    std::string workload;
    std::string op;
    std::string algo;
    dim_t n = 0;
    std::uint32_t threads = 0;
    std::uint64_t block_elems = 0;
    packet_t packets = 0;
    std::uint32_t rt_cycles = 0;
    std::uint32_t sim_makespan = 0;
    double model_steps = 0;
    std::uint64_t blocks_delivered = 0;
    std::uint64_t payload_bytes = 0;
    double seconds = 0; ///< best-of-reps wall clock of the threaded region
    double gbps = 0;
    bool verified = false;
};

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto nmin = static_cast<dim_t>(options.get_int("nmin", 4));
    const auto nmax = static_cast<dim_t>(options.get_int("nmax", 8));
    const auto pps = static_cast<packet_t>(options.get_int("pps", 4));
    const auto ppd = static_cast<packet_t>(options.get_int("ppd", 2));
    const auto block =
        static_cast<std::size_t>(options.get_int("block", 32));
    const auto threads =
        static_cast<std::uint32_t>(options.get_int("threads", 0));
    const auto reps = static_cast<int>(options.get_int("reps", 3));
    const double min_time = options.get_double("min-time", 0.1);
    const std::string json_path = options.get_string("json", "");

    hcube::bench::banner(
        "Runtime throughput",
        "threaded schedule execution: GB/s and wall-clock speedups");
    std::printf("  threads=%s block=%zu doubles  (timed region: "
                "Player::play only, best of >= %d reps)\n\n",
                threads == 0 ? "auto" : std::to_string(threads).c_str(),
                block, reps);

    // Broadcast pair uses the same total packet count P = n * pps for both
    // algorithms (the MSBT needs P divisible by n), so byte-for-byte the
    // same message crosses the cube. Scatter pair uses ppd packets per
    // destination on both trees.
    const std::vector<Workload> workloads = {
        {"sbt_bcast", "broadcast", "sbt",
         [pps](dim_t n) {
             return hcube::routing::make_tree_broadcast(
                 hcube::trees::build_sbt(n, 0),
                 hcube::routing::BroadcastDiscipline::port_oriented,
                 static_cast<packet_t>(n) * pps,
                 PortModel::one_port_full_duplex);
         },
         [](dim_t n, packet_t packets) {
             return static_cast<double>(n) * packets;
         }},
        {"msbt_bcast", "broadcast", "msbt",
         [pps](dim_t n) {
             return hcube::routing::make_msbt_broadcast(
                 n, 0, static_cast<packet_t>(n) * pps,
                 PortModel::one_port_full_duplex);
         },
         [](dim_t n, packet_t packets) {
             return static_cast<double>(packets) + n;
         }},
        {"sbt_scatter", "scatter", "sbt",
         [ppd](dim_t n) {
             return hcube::routing::make_tree_scatter(
                 hcube::trees::build_sbt(n, 0),
                 hcube::routing::ScatterPolicy::descending, ppd,
                 PortModel::one_port_full_duplex);
         },
         [](dim_t, packet_t) { return 0.0; }},
        {"bst_scatter", "scatter", "bst",
         [ppd](dim_t n) {
             return hcube::routing::make_tree_scatter(
                 hcube::trees::build_bst(n, 0),
                 hcube::routing::ScatterPolicy::cyclic, ppd,
                 PortModel::one_port_full_duplex);
         },
         [](dim_t, packet_t) { return 0.0; }},
    };

    std::printf("%-12s %3s %4s %8s %7s %8s %7s %10s %9s %9s %5s\n",
                "workload", "n", "thr", "packets", "cycles", "makespan",
                "model", "blocks", "ms", "GB/s", "ok");

    std::vector<Row> rows;
    for (const Workload& w : workloads) {
        for (dim_t n = nmin; n <= nmax; ++n) {
            const Schedule schedule = w.generate(n);
            const auto sim_stats = hcube::sim::execute_schedule(
                schedule, PortModel::one_port_full_duplex);

            const std::uint32_t nodes = std::uint32_t{1} << n;
            const std::uint32_t use_threads =
                threads != 0 ? std::min(threads, nodes)
                             : std::min(nodes,
                                        std::max(2u,
                                                 std::thread::
                                                     hardware_concurrency()));
            const hcube::rt::Plan plan = hcube::rt::compile_plan(
                schedule, hcube::rt::DataMode::move, block, use_threads);
            hcube::rt::Player player(plan);

            Row row;
            row.workload = w.name;
            row.op = w.op;
            row.algo = w.algo;
            row.n = n;
            row.threads = use_threads;
            row.block_elems = block;
            row.packets = schedule.packet_count;
            row.sim_makespan = sim_stats.makespan;
            row.model_steps = w.model_steps(n, schedule.packet_count);
            row.seconds = 1e300;
            row.verified = true;

            double elapsed = 0.0;
            int runs = 0;
            while (runs < reps || elapsed < min_time) {
                const auto stats = player.play();
                row.rt_cycles = stats.cycles;
                row.blocks_delivered = stats.blocks_delivered;
                row.payload_bytes = stats.payload_bytes;
                row.seconds = std::min(row.seconds, stats.seconds);
                row.verified = row.verified && stats.clean() &&
                               stats.cycles == sim_stats.makespan &&
                               stats.blocks_delivered ==
                                   schedule.sends.size();
                elapsed += stats.seconds;
                ++runs;
                if (runs >= 1000) {
                    break;
                }
            }
            row.gbps = static_cast<double>(row.payload_bytes) /
                       row.seconds * 1e-9;

            std::printf("%-12s %3d %4u %8u %7u %8u %7.0f %10llu %9.3f "
                        "%9.3f %5s\n",
                        row.workload.c_str(), n, row.threads, row.packets,
                        row.rt_cycles, row.sim_makespan, row.model_steps,
                        static_cast<unsigned long long>(
                            row.blocks_delivered),
                        row.seconds * 1e3, row.gbps,
                        row.verified ? "yes" : "NO");
            std::fflush(stdout);
            rows.push_back(row);
        }
    }

    // Headline speedups: measured wall-clock ratios at equal payload.
    std::printf("\n%-28s %3s %10s %10s %8s\n", "speedup (measured)", "n",
                "base ms", "fast ms", "ratio");
    const auto find = [&rows](const std::string& name, dim_t n) -> const Row* {
        for (const Row& r : rows) {
            if (r.workload == name && r.n == n) {
                return &r;
            }
        }
        return nullptr;
    };
    for (dim_t n = nmin; n <= nmax; ++n) {
        const struct {
            const char* label;
            const char* base;
            const char* fast;
        } pairs[] = {
            {"msbt vs sbt broadcast", "sbt_bcast", "msbt_bcast"},
            {"bst vs sbt scatter", "sbt_scatter", "bst_scatter"},
        };
        for (const auto& pair : pairs) {
            const Row* base = find(pair.base, n);
            const Row* fast = find(pair.fast, n);
            if (base == nullptr || fast == nullptr) {
                continue;
            }
            std::printf("%-28s %3d %10.3f %10.3f %7.2fx\n", pair.label, n,
                        base->seconds * 1e3, fast->seconds * 1e3,
                        base->seconds / fast->seconds);
        }
    }

    if (!json_path.empty()) {
        hcube::JsonArrayWriter json(json_path);
        if (!json.ok()) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         json_path.c_str());
            return 1;
        }
        for (const Row& r : rows) {
            json.begin_row();
            json.field("workload", r.workload);
            json.field("op", r.op);
            json.field("algo", r.algo);
            json.field("n", r.n);
            json.field("threads", r.threads);
            json.field("block_elems", r.block_elems);
            json.field("packets", r.packets);
            json.field("rt_cycles", r.rt_cycles);
            json.field("sim_makespan", r.sim_makespan);
            if (r.model_steps > 0) {
                json.field("model_steps", r.model_steps);
            }
            json.field("blocks_delivered", r.blocks_delivered);
            json.field("payload_bytes", r.payload_bytes);
            json.field("seconds", r.seconds);
            json.field("gbytes_per_sec", r.gbps);
            json.field("verified", r.verified);
            json.end_row();
        }
        if (json.close()) {
            std::printf("\nwrote %s\n", json_path.c_str());
        }
    }

    bool all_verified = true;
    for (const Row& r : rows) {
        all_verified = all_verified && r.verified;
    }
    if (!all_verified) {
        std::fprintf(stderr, "\nFAILED: some rows did not verify\n");
        return 1;
    }
    return 0;
}
