// Wall-clock benchmark of the threaded collective runtime (hcube::rt):
// delivered GB/s of the barrier and async engines across a worker-thread
// sweep, with four cross-checks per configuration —
//   * the barrier engine's cycle count must equal the CycleExecutor
//     makespan of the same schedule exactly,
//   * the makespan is printed next to the model:: closed-form step count
//     (Table 3) where one exists,
//   * every delivered block is checksum-verified,
//   * the async engine's final memory must be byte-identical to the
//     barrier engine's (the dataflow engine's oracle check).
//
// Every (workload, n, threads) runs under both engines; the async row's
// `speedup` column is barrier-seconds / async-seconds at identical payload
// and thread count — the measured cost of two global barriers per routing
// cycle versus dependency-only synchronization.
//
// The timed region is play() only: schedule generation, plan compilation
// and allocation are excluded, mirroring bench_executor.
//
// The default block size (32 doubles) sits in the latency-bound regime
// where per-cycle synchronization dominates; large blocks (--block 1024+)
// move both engines into the bandwidth-bound regime where equal bytes mean
// near-equal time — the live form of the paper's B_opt trade-off
// (docs/RUNTIME.md).
//
//   bench_rt --nmin 4 --nmax 8 [--pps 4] [--ppd 2] [--block 32,1024]
//            [--threads T (0 sweeps 1,2,4,hw)] [--reps 3] [--min-time 0.1]
//            [--json <path>] [--trace-out <path>]
//
// --block takes a comma-separated list of block sizes (doubles); the
// default "32,1024" covers both regimes in one run. Each JSON row also
// reports bytes_copied (payload memcpys the engine performed — 0 on the
// zero-copy delivery path), checksum_gbs (the standalone digest throughput
// of the dispatched checksum kernel at that block size), and mode (how the
// engine actually executed: barrier, serial, or stealing).
//
// --trace-out writes a chrome://tracing (Perfetto-compatible) JSON file:
// one extra instrumented run per (workload, n, threads, engine)
// configuration, per-worker begin/end of every send/recv action, one
// process (pid) per configuration. Keep the sweep narrow when tracing.
#include "bench_util.hpp"

#include "common/json.hpp"
#include "model/broadcast_model.hpp"
#include "routing/schedule_export.hpp"
#include "rt/async_player.hpp"
#include "rt/checksum.hpp"
#include "rt/communicator.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp"
#include "rt/pool.hpp"
#include "rt/simd.hpp"
#include "rt/threads.hpp"
#include "sim/cycle.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include "rt/tracing.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace {

using hcube::CliOptions;
using hcube::hc::dim_t;
using hcube::sim::packet_t;
using hcube::sim::PortModel;
using hcube::sim::Schedule;

struct Workload {
    std::string name;
    std::string op;   ///< broadcast | scatter
    std::string algo; ///< sbt | msbt | bst
    std::function<Schedule(dim_t)> generate;
    /// Closed-form routing-step count from model::, 0 if none applies.
    std::function<double(dim_t, packet_t)> model_steps;
};

struct Row {
    std::string workload;
    std::string op;
    std::string algo;
    std::string engine; ///< barrier | async
    dim_t n = 0;
    std::uint32_t threads = 0;
    std::uint64_t block_elems = 0;
    packet_t packets = 0;
    std::uint32_t rt_cycles = 0;
    std::uint32_t sim_makespan = 0;
    double model_steps = 0;
    std::uint64_t blocks_delivered = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t bytes_copied = 0; ///< 0 on the zero-copy delivery path
    std::uint64_t steals = 0;
    std::uint64_t checksum_failures = 0;
    std::uint64_t channel_faults = 0;
    std::uint64_t timeouts = 0;
    double seconds = 0; ///< best-of-reps wall clock of the threaded region
    double gbps = 0;
    double checksum_gbs = 0; ///< standalone digest kernel throughput
    double speedup = 0; ///< async rows: barrier seconds / async seconds
    std::string mode; ///< barrier | serial | stealing (last rep's choice)
    std::string transport = "ring"; ///< medium the blocks moved over
    bool verified = false;
};

/// Parses "--block 32,1024,4096" into a deduplicated size list.
std::vector<std::size_t> parse_block_list(const std::string& spec) {
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (!item.empty()) {
            const auto value =
                static_cast<std::size_t>(std::strtoull(item.c_str(),
                                                       nullptr, 10));
            if (value > 0 &&
                std::ranges::find(out, value) == out.end()) {
                out.push_back(value);
            }
        }
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    return out;
}

/// Standalone throughput of the dispatched checksum kernel at one block
/// size: GB digested per second over a cache-resident canonical block.
double checksum_throughput(std::size_t block_elems) {
    using clock = std::chrono::steady_clock;
    std::vector<double> block(block_elems);
    hcube::rt::fill_canonical(block, 0);
    std::uint64_t sink = 0;
    // Warm the dispatch target and the cache lines before timing.
    for (int k = 0; k < 16; ++k) {
        sink ^= hcube::rt::simd::checksum(block.data(), block_elems);
    }
    std::uint64_t iters = 0;
    const auto t0 = clock::now();
    double elapsed = 0;
    do {
        for (int k = 0; k < 64; ++k) {
            sink ^= hcube::rt::simd::checksum(block.data(), block_elems);
        }
        iters += 64;
        elapsed = std::chrono::duration<double>(clock::now() - t0).count();
    } while (elapsed < 0.02);
    // The digest chain keeps the optimizer honest without a volatile store
    // in the timed loop.
    if (sink == 0xDEADBEEF) {
        std::printf("#");
    }
    return static_cast<double>(iters) *
           static_cast<double>(block_elems * sizeof(double)) / elapsed *
           1e-9;
}

/// The worker counts to sweep: {1, 2, 4, auto} clamped/deduplicated via
/// the shared pick_worker_threads policy, or just the explicit request.
std::vector<std::uint32_t> thread_counts(dim_t n, std::uint32_t requested) {
    std::vector<std::uint32_t> out;
    const auto add = [&out, n](std::uint32_t t) {
        const std::uint32_t picked = hcube::rt::pick_worker_threads(n, t);
        if (std::ranges::find(out, picked) == out.end()) {
            out.push_back(picked);
        }
    };
    if (requested != 0) {
        add(requested);
        return out;
    }
    add(1);
    add(2);
    add(4);
    add(0); // auto: max(2, hardware_concurrency), clamped to 2^n
    std::ranges::sort(out);
    return out;
}

/// Byte-identical final-state comparison, slot by slot.
bool identical_memory(const hcube::rt::Plan& plan,
                      const hcube::rt::Player& ref,
                      const hcube::rt::AsyncPlayer& dut) {
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const auto a = ref.block(plan.slot_node[s], plan.slot_packet[s]);
        const auto b = dut.block(plan.slot_node[s], plan.slot_packet[s]);
        if (a.size() != b.size() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) !=
                0) {
            return false;
        }
    }
    return true;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto nmin = static_cast<dim_t>(options.get_int("nmin", 4));
    const auto nmax = static_cast<dim_t>(options.get_int("nmax", 8));
    const auto pps = static_cast<packet_t>(options.get_int("pps", 4));
    const auto ppd = static_cast<packet_t>(options.get_int("ppd", 2));
    const std::vector<std::size_t> blocks =
        parse_block_list(options.get_string("block", "32,1024"));
    if (blocks.empty()) {
        std::fprintf(stderr, "--block needs a comma-separated size list\n");
        return 1;
    }
    const auto threads =
        static_cast<std::uint32_t>(options.get_int("threads", 0));
    const auto reps = static_cast<int>(options.get_int("reps", 3));
    const double min_time = options.get_double("min-time", 0.1);
    const std::string json_path = options.get_string("json", "");
    const std::string trace_path = options.get_string("trace-out", "");

    std::unique_ptr<hcube::JsonArrayWriter> trace_json;
    if (!trace_path.empty()) {
        trace_json = std::make_unique<hcube::JsonArrayWriter>(trace_path);
        if (!trace_json->ok()) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         trace_path.c_str());
            return 1;
        }
    }
    std::uint32_t trace_pid = 0;

    hcube::bench::banner(
        "Runtime throughput",
        "barrier vs dataflow engines: GB/s and wall-clock speedups");
    std::string block_list;
    for (const std::size_t b : blocks) {
        block_list += (block_list.empty() ? "" : ",") + std::to_string(b);
    }
    std::printf("  threads=%s blocks=%s doubles  checksum dispatch=%s "
                "(timed region: play() only, best of >= %d reps)\n\n",
                threads == 0 ? "1,2,4,auto"
                             : std::to_string(threads).c_str(),
                block_list.c_str(), hcube::rt::simd::dispatch_name(), reps);

    // The digest kernel's standalone throughput per block size — attached
    // to every row of that size so the JSON carries the checksum cost
    // alongside the end-to-end delivery numbers it is buried in.
    std::vector<double> checksum_gbs(blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        checksum_gbs[i] = checksum_throughput(blocks[i]);
        std::printf("  checksum(%zu doubles): %.2f GB/s\n", blocks[i],
                    checksum_gbs[i]);
    }
    std::printf("\n");

    // Broadcast pair uses the same total packet count P = n * pps for both
    // algorithms (the MSBT needs P divisible by n), so byte-for-byte the
    // same message crosses the cube. Scatter pair uses ppd packets per
    // destination on both trees.
    const std::vector<Workload> workloads = {
        {"sbt_bcast", "broadcast", "sbt",
         [pps](dim_t n) {
             return hcube::routing::make_tree_broadcast(
                 hcube::trees::build_sbt(n, 0),
                 hcube::routing::BroadcastDiscipline::port_oriented,
                 static_cast<packet_t>(n) * pps,
                 PortModel::one_port_full_duplex);
         },
         [](dim_t n, packet_t packets) {
             return static_cast<double>(n) * packets;
         }},
        {"msbt_bcast", "broadcast", "msbt",
         [pps](dim_t n) {
             return hcube::routing::make_msbt_broadcast(
                 n, 0, static_cast<packet_t>(n) * pps,
                 PortModel::one_port_full_duplex);
         },
         [](dim_t n, packet_t packets) {
             return static_cast<double>(packets) + n;
         }},
        {"sbt_scatter", "scatter", "sbt",
         [ppd](dim_t n) {
             return hcube::routing::make_tree_scatter(
                 hcube::trees::build_sbt(n, 0),
                 hcube::routing::ScatterPolicy::descending, ppd,
                 PortModel::one_port_full_duplex);
         },
         [](dim_t, packet_t) { return 0.0; }},
        {"bst_scatter", "scatter", "bst",
         [ppd](dim_t n) {
             return hcube::routing::make_tree_scatter(
                 hcube::trees::build_bst(n, 0),
                 hcube::routing::ScatterPolicy::cyclic, ppd,
                 PortModel::one_port_full_duplex);
         },
         [](dim_t, packet_t) { return 0.0; }},
    };

    std::printf("%-12s %3s %5s %4s %-8s %8s %7s %10s %9s %9s %-8s %8s "
                "%5s\n",
                "workload", "n", "blk", "thr", "engine", "packets",
                "cycles", "blocks", "ms", "GB/s", "mode", "speedup", "ok");

    std::vector<Row> rows;
    for (const Workload& w : workloads) {
        for (dim_t n = nmin; n <= nmax; ++n) {
            const Schedule schedule = w.generate(n);
            const auto sim_stats = hcube::sim::execute_schedule(
                schedule, PortModel::one_port_full_duplex);

            for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
            const std::size_t block = blocks[bi];
            for (const std::uint32_t use_threads :
                 thread_counts(n, threads)) {
                const hcube::rt::Plan plan = hcube::rt::compile_plan(
                    schedule, hcube::rt::DataMode::move, block,
                    use_threads);
                hcube::rt::Player barrier_player(plan);
                hcube::rt::AsyncPlayer async_player(plan);
                // Both engines replay on one persistent pool, so the rows
                // measure steady-state execution with zero thread churn.
                const auto pool =
                    use_threads > 1
                        ? std::make_unique<hcube::rt::WorkerPool>(use_threads)
                        : nullptr;

                Row base;
                base.workload = w.name;
                base.op = w.op;
                base.algo = w.algo;
                base.n = n;
                base.threads = use_threads;
                base.block_elems = block;
                base.packets = schedule.packet_count;
                base.sim_makespan = sim_stats.makespan;
                base.model_steps = w.model_steps(n, schedule.packet_count);
                base.checksum_gbs = checksum_gbs[bi];

                // One rep loop per engine, identical policy: best-of wall
                // clock over >= reps runs or min_time, whichever is later.
                const auto measure = [&](auto& player, Row& row,
                                         bool check_makespan) {
                    row.seconds = 1e300;
                    row.verified = true;
                    double elapsed = 0.0;
                    int runs = 0;
                    while (runs < reps || elapsed < min_time) {
                        const auto stats = player.play(pool.get());
                        row.rt_cycles = stats.cycles;
                        row.blocks_delivered = stats.blocks_delivered;
                        row.payload_bytes = stats.payload_bytes;
                        row.bytes_copied = stats.bytes_copied;
                        row.mode = hcube::rt::to_string(stats.mode);
                        row.transport = hcube::ft::to_string(stats.transport);
                        row.steals = stats.steals;
                        row.checksum_failures += stats.checksum_failures;
                        row.channel_faults += stats.channel_faults;
                        row.timeouts += stats.timeouts;
                        row.seconds = std::min(row.seconds, stats.seconds);
                        row.verified =
                            row.verified && stats.clean() &&
                            (!check_makespan ||
                             stats.cycles == sim_stats.makespan) &&
                            stats.blocks_delivered ==
                                schedule.sends.size();
                        elapsed += stats.seconds;
                        ++runs;
                        if (runs >= 1000) {
                            break;
                        }
                    }
                    row.gbps = static_cast<double>(row.payload_bytes) /
                               row.seconds * 1e-9;
                };

                Row barrier_row = base;
                barrier_row.engine = "barrier";
                measure(barrier_player, barrier_row, true);

                Row async_row = base;
                async_row.engine = "async";
                measure(async_player, async_row, true);
                // The oracle check: after both engines' final reps the
                // memory images must agree byte for byte.
                async_row.verified =
                    async_row.verified && barrier_row.verified &&
                    identical_memory(plan, barrier_player, async_player);
                async_row.speedup =
                    barrier_row.seconds / async_row.seconds;

                for (const Row* row : {&barrier_row, &async_row}) {
                    std::printf("%-12s %3d %5zu %4u %-8s %8u %7u %10llu "
                                "%9.3f %9.3f %-8s ",
                                row->workload.c_str(), n, block,
                                row->threads, row->engine.c_str(),
                                row->packets, row->rt_cycles,
                                static_cast<unsigned long long>(
                                    row->blocks_delivered),
                                row->seconds * 1e3, row->gbps,
                                row->mode.c_str());
                    if (row->speedup > 0) {
                        std::printf("%7.2fx ", row->speedup);
                    } else {
                        std::printf("%8s ", "-");
                    }
                    std::printf("%5s\n", row->verified ? "yes" : "NO");
                }
                std::fflush(stdout);
                rows.push_back(barrier_row);
                rows.push_back(async_row);

                if (trace_json != nullptr) {
                    // One instrumented (untimed) run per engine; every
                    // configuration becomes its own chrome-trace process.
                    const std::string label =
                        w.name + " n=" + std::to_string(n) +
                        " t=" + std::to_string(use_threads);
                    hcube::rt::TraceRecorder recorder(use_threads);
                    barrier_player.set_trace(&recorder);
                    (void)barrier_player.play();
                    barrier_player.set_trace(nullptr);
                    recorder.append_chrome_events(*trace_json, trace_pid++,
                                                  label + " barrier");
                    recorder.reset();
                    async_player.set_trace(&recorder);
                    (void)async_player.play();
                    async_player.set_trace(nullptr);
                    recorder.append_chrome_events(*trace_json, trace_pid++,
                                                  label + " async");
                }
            }
            }
        }
    }

    // Headline algorithm-vs-algorithm speedups, measured on the barrier
    // engine at the widest swept thread count: the paper's latency
    // argument (fewer routing cycles at equal bytes) is a statement about
    // the per-cycle synchronization cost, which is exactly what the
    // barrier engine pays and the async engine retires. The async rows'
    // own speedup column quantifies that retirement per workload.
    const std::size_t headline_block = blocks.front();
    const auto find = [&rows, headline_block](const std::string& name,
                                              dim_t n) -> const Row* {
        const Row* best = nullptr;
        for (const Row& r : rows) {
            if (r.workload == name && r.n == n && r.engine == "barrier" &&
                r.block_elems == headline_block &&
                (best == nullptr || r.threads > best->threads)) {
                best = &r;
            }
        }
        return best;
    };
    std::printf("\n%-28s %3s %10s %10s %8s\n",
                "speedup (barrier engine)", "n", "base ms", "fast ms",
                "ratio");
    for (dim_t n = nmin; n <= nmax; ++n) {
        const struct {
            const char* label;
            const char* base;
            const char* fast;
        } pairs[] = {
            {"msbt vs sbt broadcast", "sbt_bcast", "msbt_bcast"},
            {"bst vs sbt scatter", "sbt_scatter", "bst_scatter"},
        };
        for (const auto& pair : pairs) {
            const Row* b = find(pair.base, n);
            const Row* f = find(pair.fast, n);
            if (b == nullptr || f == nullptr) {
                continue;
            }
            std::printf("%-28s %3d %10.3f %10.3f %7.2fx\n", pair.label, n,
                        b->seconds * 1e3, f->seconds * 1e3,
                        b->seconds / f->seconds);
        }
    }

    if (!json_path.empty()) {
        hcube::JsonArrayWriter json(json_path);
        if (!json.ok()) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         json_path.c_str());
            return 1;
        }
        for (const Row& r : rows) {
            json.begin_row();
            json.field("workload", r.workload);
            json.field("op", r.op);
            json.field("algo", r.algo);
            json.field("engine", r.engine);
            json.field("n", r.n);
            json.field("threads", r.threads);
            json.field("block_elems", r.block_elems);
            json.field("packets", r.packets);
            json.field("rt_cycles", r.rt_cycles);
            json.field("sim_makespan", r.sim_makespan);
            if (r.model_steps > 0) {
                json.field("model_steps", r.model_steps);
            }
            json.field("blocks_delivered", r.blocks_delivered);
            json.field("payload_bytes", r.payload_bytes);
            json.field("bytes_copied", r.bytes_copied);
            json.field("checksum_gbs", r.checksum_gbs);
            json.field("mode", r.mode);
            json.field("transport", r.transport);
            json.field("checksum_failures", r.checksum_failures);
            json.field("channel_faults", r.channel_faults);
            json.field("timeouts", r.timeouts);
            json.field("seconds", r.seconds);
            json.field("gbytes_per_sec", r.gbps);
            json.field("pool_reused", true);
            if (r.engine == "async") {
                json.field("speedup_vs_barrier", r.speedup);
                json.field("steals", r.steals);
            }
            json.field("verified", r.verified);
            json.end_row();
        }
        if (json.close()) {
            std::printf("\nwrote %s\n", json_path.c_str());
        }
    }

    if (trace_json != nullptr && trace_json->close()) {
        std::printf("wrote %s\n", trace_path.c_str());
    }

    bool all_verified = true;
    for (const Row& r : rows) {
        all_verified = all_verified && r.verified;
    }
    if (!all_verified) {
        std::fprintf(stderr, "\nFAILED: some rows did not verify\n");
        return 1;
    }
    return 0;
}
