// Table 5 — maximum BST subtree sizes against (N-1)/log N, n = 2..20,
// regenerated exactly from the base() census. The paper's printed values are
// included for a line-by-line diff.
//
// Usage: bench_table5_bst [--max-dim N] [--csv path]
#include "bench_util.hpp"

#include "hc/necklace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

int main(int argc, char** argv) {
    using namespace hcube;
    const CliOptions options(argc, argv);
    const auto max_dim =
        static_cast<hc::dim_t>(options.get_int("max-dim", 20));
    bench::banner("Table 5",
                  "BST maximum subtree sizes vs (N-1)/log N, n = 2.." +
                      std::to_string(max_dim));

    const std::map<hc::dim_t, std::uint64_t> paper = {
        {2, 2},      {3, 3},      {4, 5},      {5, 7},      {6, 13},
        {7, 19},     {8, 35},     {9, 59},     {10, 107},   {11, 187},
        {12, 351},   {13, 631},   {14, 1181},  {15, 2191},  {16, 4115},
        {17, 7711},  {18, 14601}, {19, 27595}, {20, 52487}};

    const std::vector<std::string> header = {
        "n", "BST(max) computed", "BST(max) paper", "(N-1)/logN", "ratio"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    bool all_match = true;
    for (hc::dim_t n = 2; n <= max_dim; ++n) {
        const auto census = hc::base_census(n);
        const std::uint64_t max_size = *std::ranges::max_element(census);
        const double balanced = (std::ldexp(1.0, n) - 1) / n;
        const auto it = paper.find(n);
        const std::string paper_value =
            (it != paper.end()) ? std::to_string(it->second) : "-";
        if (it != paper.end() && it->second != max_size) {
            all_match = false;
        }
        std::vector<std::string> row = {
            std::to_string(n), std::to_string(max_size), paper_value,
            format_fixed(balanced, 2),
            format_fixed(static_cast<double>(max_size) / balanced, 2)};
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n%s\n", all_match
                              ? "All computed values match the paper's "
                                "Table 5 exactly."
                              : "MISMATCH against the paper's Table 5!");
    return all_match ? 0 : 1;
}
