// Table 4 — broadcast complexity relative to the MSBT, in the paper's four
// regimes: one packet; M/B >> log N; B = B_opt with start-up dominating; and
// B = B_opt with transfer dominating. "paper" columns quote the table's
// simplified entries evaluated at this n; "computed" columns evaluate the
// exact Table 3 formulas in the corresponding limit.
//
// Usage: bench_table4_ratios [--dim N] [--csv path]
#include "bench_util.hpp"

#include "model/broadcast_model.hpp"

#include <cstdio>

namespace {

using namespace hcube;
using model::Algorithm;
using model::Regime;
using sim::PortModel;

struct Row {
    const char* label;
    Algorithm algo;
    PortModel port;
    // Paper entries as functions of n (the Table 4 cells).
    double paper[4];
};

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 10));
    const double dn = n;
    bench::banner("Table 4", "complexity vs MSBT, log N = " +
                                 std::to_string(n));

    const Row rows[] = {
        {"1 s or r,  SBT/MSBT", Algorithm::sbt,
         PortModel::one_port_half_duplex,
         {dn / (dn + 1), dn / 2, 1.0, dn / 2}},
        {"1 s or r,  TCBT/MSBT", Algorithm::tcbt,
         PortModel::one_port_half_duplex,
         {(2 * dn - 2) / (dn + 1), 1.5, 2.0, 1.5}},
        {"1 s and r, SBT/MSBT", Algorithm::sbt,
         PortModel::one_port_full_duplex,
         {dn / (dn + 1), dn, 1.0, dn}},
        {"1 s and r, TCBT/MSBT", Algorithm::tcbt,
         PortModel::one_port_full_duplex,
         {(2 * dn - 2) / (dn + 1), 2.0, 2.0, 2.0}},
        {"all ports, SBT/MSBT", Algorithm::sbt, PortModel::all_port,
         {dn / (dn + 1), dn, 1.0, dn}},
        {"all ports, TCBT/MSBT", Algorithm::tcbt, PortModel::all_port,
         {dn / (dn + 1), dn, 1.0, dn}},
    };

    const std::vector<std::string> header = {
        "Row",
        "one pkt (paper)",  "one pkt (exact)",
        "M/B>>logN (paper)", "M/B>>logN (exact)",
        "Bopt,startup (paper)", "Bopt,startup (exact)",
        "Bopt,transfer (paper)", "Bopt,transfer (exact)"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    constexpr Regime regimes[] = {Regime::one_packet, Regime::many_packets,
                                  Regime::bopt_startup_bound,
                                  Regime::bopt_transfer_bound};
    for (const auto& row_spec : rows) {
        std::vector<std::string> row{row_spec.label};
        for (int r = 0; r < 4; ++r) {
            row.push_back(format_fixed(row_spec.paper[r], 2));
            row.push_back(format_fixed(
                model::complexity_ratio_vs_msbt(row_spec.algo, row_spec.port,
                                                regimes[r], n),
                2));
        }
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nPaper's Table 4 prints the simplified asymptotic entries "
              "(the SBT and TCBT all-port\nrows coincide there); 'exact' "
              "evaluates the full Table 3 formulas in each regime, so\n"
              "small-n corrections like n/(n-1) are visible.");
    return 0;
}
