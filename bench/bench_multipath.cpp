// Extension bench — bandwidth aggregation over the log N node-disjoint
// paths (paper §1's structural fact): time to move a large message between
// antipodal nodes as a function of how many of the disjoint paths carry it.
//
// Usage: bench_multipath [--dim n] [--msg elements] [--chunk elements]
//                        [--csv path]
#include "bench_util.hpp"

#include "routing/multipath.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace hcube;
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 7));
    const double M = options.get_double("msg", 1 << 20);
    const double chunk = options.get_double("chunk", 1024);
    bench::banner("Extension: multipath transfer",
                  "antipodal transfer over k node-disjoint paths, n = " +
                      std::to_string(n));

    const hc::node_t src = 0;
    const hc::node_t dst = (hc::node_t{1} << n) - 1;

    const std::vector<std::string> header = {"paths", "time", "speedup"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    double single = 0;
    for (std::size_t paths = 1; paths <= static_cast<std::size_t>(n);
         ++paths) {
        sim::EventParams params; // iPSC constants
        params.model = sim::PortModel::all_port;
        sim::EventEngine engine(n, params);
        routing::MultipathTransfer protocol(n, src, dst, M, chunk, paths);
        const auto stats = engine.run(protocol);
        if (!protocol.complete()) {
            std::fprintf(stderr, "incomplete transfer at %zu paths\n", paths);
            return 1;
        }
        if (paths == 1) {
            single = stats.completion_time;
        }
        std::vector<std::string> row = {
            std::to_string(paths), format_seconds(stats.completion_time),
            format_fixed(single / stats.completion_time, 2)};
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nThe first log N rows use the n distance-length disjoint "
              "paths; speedup approaches\nlog N for transfer-dominated "
              "messages — the bandwidth the MSBT exploits for broadcast,\n"
              "available even point to point.");
    return 0;
}
