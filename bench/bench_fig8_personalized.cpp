// Figure 8 — personalized communication with the SBT (descending-address
// order) and the BST (cyclic subtree order, depth-first within a subtree) on
// the simulated iPSC: one-port communication with a ~20% overlap between
// operations on different ports. The analysis says the two are equal at one
// port; the measurement favors the BST because only it can exploit the
// overlap fully (§5.2) — our engine reproduces the mechanism: the SBT's
// saturated subtree-0 neighbor back-pressures the root.
//
// Usage: bench_fig8_personalized [--msg bytes] [--max-dim N]
//                                [--overlap a] [--csv path]
#include "bench_util.hpp"

#include "common/check.hpp"
#include "routing/protocols.hpp"
#include "routing/scatter.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <cstdio>

namespace {

using namespace hcube;

double run_scatter(const trees::SpanningTree& tree,
                   const std::vector<hc::node_t>& order, double M,
                   double overlap) {
    sim::EventParams params;
    params.model = sim::PortModel::one_port_half_duplex;
    params.overlap = overlap;
    sim::EventEngine engine(tree.n, params);
    routing::ScatterProtocol protocol(tree, order, M);
    const auto stats = engine.run(protocol);
    if (protocol.delivered() != tree.node_count() - 1) {
        throw check_error("scatter incomplete");
    }
    return stats.completion_time;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const double M = options.get_double("msg", 1024);
    const auto max_dim =
        static_cast<hc::dim_t>(options.get_int("max-dim", 7));
    const double overlap = options.get_double("overlap", 0.2);
    bench::banner("Figure 8",
                  "personalized communication, SBT vs BST, M = " +
                      format_fixed(M, 0) + " B/node, one port, overlap = " +
                      format_fixed(overlap, 2));

    const std::vector<std::string> header = {"dim", "SBT (sim)", "BST (sim)",
                                             "BST advantage"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (hc::dim_t n = 2; n <= max_dim; ++n) {
        const trees::SpanningTree sbt = trees::build_sbt(n, 0);
        const trees::SpanningTree bst = trees::build_bst(n, 0);
        const double sbt_time = run_scatter(
            sbt, routing::descending_dest_order(sbt), M, overlap);
        const double bst_time = run_scatter(
            bst,
            routing::cyclic_dest_order(bst,
                                       routing::SubtreeOrder::depth_first),
            M, overlap);
        std::vector<std::string> row = {
            std::to_string(n), format_seconds(sbt_time),
            format_seconds(bst_time),
            format_fixed(100.0 * (sbt_time - bst_time) / sbt_time, 1) + " %"};
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nWith overlap = 0 the two curves coincide "
              "(bench_ablation_overlap shows the sweep);\nwith the iPSC's "
              "~20% overlap the BST pulls ahead — the paper's Figure 8.");
    return 0;
}
