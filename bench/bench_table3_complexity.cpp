// Table 3 — broadcast communication complexity: for every algorithm × port
// row, the number of routing steps T at a given (M, B), the optimal packet
// size B_opt and the minimum time T_min — model columns straight from the
// paper's formulas, simulation columns from executing the real schedules.
//
// Usage: bench_table3_complexity [--dim N] [--msg elements] [--packet B]
//                                [--tau s] [--tc s] [--csv path]
#include "bench_util.hpp"

#include "model/broadcast_model.hpp"
#include "routing/broadcast.hpp"
#include "trees/hp.hpp"
#include "trees/sbt.hpp"
#include "trees/tcbt.hpp"

#include <cmath>
#include <cstdio>

namespace {

using namespace hcube;
using model::Algorithm;
using sim::PortModel;

std::uint32_t simulated_steps(Algorithm algo, PortModel port, double M,
                              double B, hc::dim_t n) {
    const hc::node_t s = 0;
    const auto packets =
        static_cast<sim::packet_t>(std::ceil(M / B));
    routing::Schedule schedule;
    switch (algo) {
    case Algorithm::hp:
        schedule = routing::paced_broadcast(
            trees::build_hamiltonian_path(n, s,
                                          trees::HpVariant::source_at_end),
            packets, port);
        break;
    case Algorithm::sbt:
        schedule = (port == PortModel::all_port)
                       ? routing::paced_broadcast(trees::build_sbt(n, s),
                                                  packets, port)
                       : routing::port_oriented_broadcast(
                             trees::build_sbt(n, s), packets);
        break;
    case Algorithm::tcbt:
        schedule =
            routing::paced_broadcast(trees::build_tcbt(n, s), packets, port);
        break;
    case Algorithm::msbt: {
        const auto per_subtree = static_cast<sim::packet_t>(std::ceil(
            M / (B * n)));
        schedule = routing::msbt_broadcast(n, s, per_subtree, port);
        break;
    }
    case Algorithm::bst:
        break;
    }
    return sim::execute_schedule(schedule, port).makespan;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 6));
    const double M = options.get_double("msg", 61440);
    const double B = options.get_double("packet", 1024);
    const model::CommParams params{options.get_double("tau", 1.7e-3),
                                   options.get_double("tc", 2.86e-6)};
    bench::banner("Table 3",
                  "broadcast complexity, n = " + std::to_string(n) +
                      ", M = " + format_fixed(M, 0) +
                      ", B = " + format_fixed(B, 0));

    const std::vector<std::string> header = {
        "Row",       "T steps (model)", "T steps (sim)", "T(M,B)",
        "B_opt",     "T_min"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    const struct {
        Algorithm algo;
        PortModel port;
        const char* name;
    } rows[] = {
        {Algorithm::hp, PortModel::one_port_half_duplex, "HP, 1 s or r"},
        {Algorithm::hp, PortModel::one_port_full_duplex, "HP, 1 s & r"},
        {Algorithm::sbt, PortModel::one_port_half_duplex, "SBT, 1 port"},
        {Algorithm::sbt, PortModel::all_port, "SBT, logN ports"},
        {Algorithm::tcbt, PortModel::one_port_half_duplex, "TCBT, 1 s or r"},
        {Algorithm::tcbt, PortModel::one_port_full_duplex, "TCBT, 1 s & r"},
        {Algorithm::tcbt, PortModel::all_port, "TCBT, logN ports"},
        {Algorithm::msbt, PortModel::one_port_half_duplex, "MSBT, 1 s or r"},
        {Algorithm::msbt, PortModel::one_port_full_duplex, "MSBT, 1 s & r"},
        {Algorithm::msbt, PortModel::all_port, "MSBT, logN ports"},
    };

    for (const auto& spec : rows) {
        std::vector<std::string> row{spec.name};
        row.push_back(format_fixed(
            model::broadcast_steps(spec.algo, spec.port, M, B, n), 0));
        row.push_back(std::to_string(
            simulated_steps(spec.algo, spec.port, M, B, n)));
        row.push_back(format_seconds(
            model::broadcast_time(spec.algo, spec.port, M, B, n, params)));
        row.push_back(format_fixed(
            model::broadcast_bopt(spec.algo, spec.port, M, n, params), 1));
        row.push_back(format_seconds(
            model::broadcast_tmin(spec.algo, spec.port, M, n, params)));
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nModel T columns are the paper's formulas; sim columns "
              "execute the real schedules\nunder the cycle-accurate "
              "port-model validator (HP full-duplex differs by the paper's\n"
              "known off-by-one, see DESIGN.md).");
    return 0;
}
