// Figure 7 — speedup of MSBT-based over SBT-based broadcasting (the ratio of
// the Figure 6 series): measured ≈ log N, as the paper reports.
//
// Usage: bench_fig7_speedup [--msg bytes] [--packet bytes] [--max-dim N]
//                           [--csv path]
#include "bench_util.hpp"

#include "routing/protocols.hpp"
#include "trees/sbt.hpp"

#include <cstdio>

namespace {

using namespace hcube;

double run_sbt(hc::dim_t n, double M, double B) {
    sim::EventParams params;
    params.model = sim::PortModel::one_port_full_duplex;
    const trees::SpanningTree tree = trees::build_sbt(n, 0);
    sim::EventEngine engine(n, params);
    routing::PortOrientedBroadcast protocol(tree, M, B);
    return engine.run(protocol).completion_time;
}

double run_msbt(hc::dim_t n, double M, double B) {
    sim::EventParams params;
    params.model = sim::PortModel::one_port_full_duplex;
    sim::EventEngine engine(n, params);
    routing::MsbtBroadcastProtocol protocol(n, 0, M, B);
    return engine.run(protocol).completion_time;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const double M = options.get_double("msg", 61440);
    const double B = options.get_double("packet", 1024);
    const auto max_dim =
        static_cast<hc::dim_t>(options.get_int("max-dim", 7));
    bench::banner("Figure 7", "speedup of MSBT over SBT broadcasting");

    const std::vector<std::string> header = {"dim", "speedup (sim)",
                                             "log N (paper's prediction)"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (hc::dim_t n = 2; n <= max_dim; ++n) {
        const double speedup = run_sbt(n, M, B) / run_msbt(n, M, B);
        std::vector<std::string> row = {std::to_string(n),
                                        format_fixed(speedup, 2),
                                        std::to_string(n)};
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nThe measured speedup tracks log N (slightly below: the MSBT "
              "pays log N pipeline\nfill cycles), matching the paper's "
              "Figure 7.");
    return 0;
}
