// Figure 5 — SBT broadcasting time as a function of the *external* packet
// size, for several cube dimensions, on the simulated iPSC (internal packet
// size 1 KB): the time grows as the external packet size shrinks below the
// internal packet (more start-ups) and flattens above it.
//
// Usage: bench_fig5_sbt_packetsize [--msg bytes] [--max-dim N] [--csv path]
#include "bench_util.hpp"

#include "routing/protocols.hpp"
#include "trees/sbt.hpp"

#include <cstdio>
#include <vector>

int main(int argc, char** argv) {
    using namespace hcube;
    const CliOptions options(argc, argv);
    const double M = options.get_double("msg", 61440); // 60 KB
    const auto max_dim =
        static_cast<hc::dim_t>(options.get_int("max-dim", 7));
    bench::banner("Figure 5",
                  "SBT broadcast time vs external packet size, M = " +
                      format_fixed(M / 1024, 0) + " KB");

    const std::vector<double> external_sizes = {128,  256,  384,  512, 640,
                                                768,  896,  1024, 1536, 2048,
                                                4096};
    std::vector<std::string> header = {"ext. packet [B]"};
    for (hc::dim_t n = 2; n <= max_dim; ++n) {
        header.push_back("d" + std::to_string(n));
    }
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    for (const double ext : external_sizes) {
        std::vector<std::string> row = {format_fixed(ext, 0)};
        for (hc::dim_t n = 2; n <= max_dim; ++n) {
            sim::EventParams params; // iPSC defaults (tau/tc/1KB internal)
            params.model = sim::PortModel::one_port_full_duplex;
            const trees::SpanningTree tree = trees::build_sbt(n, 0);
            sim::EventEngine engine(n, params);
            routing::PortOrientedBroadcast protocol(tree, M, ext);
            const auto stats = engine.run(protocol);
            if (!protocol.complete()) {
                std::fprintf(stderr, "broadcast incomplete at n=%d\n", n);
                return 1;
            }
            row.push_back(format_seconds(stats.completion_time));
        }
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nAs in the paper's Figure 5: below the 1 KB internal packet "
              "size the time rises\nroughly linearly in 1/packet-size (every "
              "external packet pays its own start-up);\nabove 1 KB the "
              "internal packetization takes over and the curve flattens.");
    return 0;
}
