// Benchmark of hcube::mbr — dynamic membership and collectives on
// incomplete hypercubes — in three byte-verified sections:
//
//   1. identity: on a FULL view every member schedule (broadcast both
//      disciplines, scatter, gather) must be byte-identical — same sends,
//      same order, same packet ids — to its pre-membership full-cube
//      generator. A single differing send fails the row and the binary.
//   2. incomplete: non-power-of-two member counts executed through a
//      persistent svc::Session, every run byte-verified against the
//      barrier oracle on exactly the live member set.
//   3. churn: a join/leave storm against a session serving a
//      mixed-dimension signature population. Measures the steady-state
//      hit rate under churn and the replan latency paid on each miss, and
//      checks invalidation is SURGICAL: transitions touch only the top
//      half of the address space, so sub-cube plans must never be evicted
//      — the eviction count must equal transitions x top-dimension plans,
//      exactly.
//
// Any unverified row exits 1; CI greps the JSON for '"verified": false'
// and for the presence of the churn scenario rows.
//
//   bench_mbr [--n 5] [--block 128] [--churn 24] [--json <path>]
#include "bench_util.hpp"

#include "common/json.hpp"
#include "mbr/view.hpp"
#include "routing/schedule_export.hpp"
#include "svc/session.hpp"
#include "trees/sbt.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace {

using hcube::CliOptions;
using hcube::hc::dim_t;
using hcube::hc::node_t;
using hcube::sim::packet_t;
using hcube::sim::PortModel;
using hcube::sim::Schedule;
using namespace hcube::svc;
namespace mbr = hcube::mbr;
namespace routing = hcube::routing;

Signature make_sig(Op op, Family family, dim_t n, node_t root,
                   packet_t packets, std::uint32_t block) {
    Signature s;
    s.op = op;
    s.family = family;
    s.n = n;
    s.root = root;
    s.packets = packets;
    s.block_elems = block;
    return s;
}

bool same_schedule(const Schedule& a, const Schedule& b) {
    return a.n == b.n && a.packet_count == b.packet_count &&
           a.initial_holder == b.initial_holder && a.sends == b.sends;
}

struct IdentityRow {
    dim_t n = 0;
    std::string op;
    bool identical = false;
};

/// Section 1: full-view member schedules vs the legacy generators.
std::vector<IdentityRow> run_identity(dim_t max_n) {
    std::vector<IdentityRow> rows;
    for (dim_t n = 3; n <= max_n; ++n) {
        const mbr::View full(n);
        const node_t root = (node_t{1} << n) / 3; // off-zero root
        const auto sbt = hcube::trees::build_sbt(n, root);
        rows.push_back(
            {n, "broadcast_port_oriented",
             same_schedule(
                 routing::make_member_broadcast(
                     full, root, routing::BroadcastDiscipline::port_oriented,
                     4, PortModel::one_port_full_duplex),
                 routing::make_tree_broadcast(
                     sbt, routing::BroadcastDiscipline::port_oriented, 4,
                     PortModel::one_port_full_duplex))});
        rows.push_back(
            {n, "broadcast_paced",
             same_schedule(
                 routing::make_member_broadcast(
                     full, root, routing::BroadcastDiscipline::paced, 4,
                     PortModel::one_port_full_duplex),
                 routing::make_tree_broadcast(
                     sbt, routing::BroadcastDiscipline::paced, 4,
                     PortModel::one_port_full_duplex))});
        rows.push_back(
            {n, "scatter",
             same_schedule(routing::make_member_scatter(full, root, 2),
                           routing::make_tree_scatter(
                               sbt, routing::ScatterPolicy::descending, 2,
                               PortModel::one_port_full_duplex))});
        rows.push_back(
            {n, "gather",
             same_schedule(routing::make_member_gather(full, root, 2),
                           routing::make_tree_gather(
                               sbt, routing::ScatterPolicy::descending, 2,
                               PortModel::one_port_full_duplex))});
    }
    return rows;
}

struct IncompleteRow {
    dim_t n = 0;
    node_t members = 0;
    std::string op;
    bool verified = false;
    double ms = 0;
};

/// Section 2: non-power-of-two member counts through the session.
std::vector<IncompleteRow> run_incomplete(dim_t max_n, std::uint32_t block) {
    std::vector<IncompleteRow> rows;
    for (dim_t n = 4; n <= max_n; ++n) {
        SessionParams params;
        params.threads = 2;
        params.comm = hcube::model::ipsc_params();
        Session session(n, params);
        // A deterministic hole pattern keeping root 0 live.
        for (node_t v = 3; v < (node_t{1} << n); v += 5) {
            (void)session.leave(v);
        }
        const std::vector<std::pair<std::string, Signature>> ops = {
            {"broadcast", make_sig(Op::broadcast, Family::sbt, n, 0, 4,
                                   block)},
            {"scatter", make_sig(Op::scatter, Family::sbt, n, 0, 2, block)},
            {"gather", make_sig(Op::gather, Family::sbt, n, 0, 2, block)},
            {"reduce", make_sig(Op::reduce, Family::sbt, n, 0, 2, block)},
        };
        for (const auto& [name, sig] : ops) {
            const ExecStats stats = session.execute(sig);
            rows.push_back({n, stats.member_count, name, stats.verified,
                            stats.seconds * 1e3});
        }
    }
    return rows;
}

struct ChurnRow {
    dim_t n = 0;
    int transitions = 0;
    std::uint64_t executes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double hit_rate = 0;
    std::uint64_t evictions_expected = 0;
    std::uint64_t evictions_actual = 0;
    double replan_avg_ms = 0;
    double replan_max_ms = 0;
    bool verified = false;
};

/// Section 3: the join/leave storm.
ChurnRow run_churn(dim_t n, std::uint32_t block, int transitions) {
    SessionParams params;
    params.threads = 2;
    params.comm = hcube::model::ipsc_params();
    Session session(n, params);

    // Mixed-dimension mix: only the two top-dimension signatures can ever
    // be invalidated by the storm below.
    std::vector<Signature> mix;
    for (dim_t m = 2; m <= n; ++m) {
        mix.push_back(make_sig(Op::broadcast, Family::sbt, m, 0, 2, block));
    }
    mix.push_back(make_sig(Op::scatter, Family::sbt, n, 0, 2, block));

    ChurnRow row;
    row.n = n;
    row.transitions = transitions;
    double replan_total_ms = 0;

    const auto run_mix = [&](bool count) {
        for (const Signature& sig : mix) {
            const auto start = std::chrono::steady_clock::now();
            const ExecStats stats = session.execute(sig);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            row.verified = row.verified && stats.verified;
            if (!count) {
                continue;
            }
            ++row.executes;
            if (stats.cache_hit) {
                ++row.hits;
            } else {
                ++row.misses;
                replan_total_ms += ms;
                row.replan_max_ms = std::max(row.replan_max_ms, ms);
            }
        }
    };

    row.verified = true;
    run_mix(false); // warm every signature once

    // The storm only ever touches the top half of the address space, so
    // every sub-cube plan (m < n) stays resident throughout.
    const node_t half = node_t{1} << (n - 1);
    for (int step = 0; step < transitions; ++step) {
        const node_t addr =
            half + (static_cast<node_t>(step / 2) % half);
        if (step % 2 == 0) {
            (void)session.leave(addr);
        } else {
            (void)session.join(addr);
        }
        run_mix(true);
    }

    // Exactly the two n-dimensional plans go stale per transition (they
    // were re-created by the mix after each previous transition).
    row.evictions_expected = static_cast<std::uint64_t>(transitions) * 2;
    row.evictions_actual = session.epoch_evictions();
    row.hit_rate = row.executes > 0 ? static_cast<double>(row.hits) /
                                          static_cast<double>(row.executes)
                                    : 0;
    row.replan_avg_ms =
        row.misses > 0 ? replan_total_ms / static_cast<double>(row.misses)
                       : 0;
    row.verified = row.verified &&
                   row.evictions_actual == row.evictions_expected &&
                   row.misses == row.evictions_expected;
    return row;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<dim_t>(options.get_int("n", 5));
    const auto block =
        static_cast<std::uint32_t>(options.get_int("block", 128));
    const int churn = static_cast<int>(options.get_int("churn", 24));
    const std::string json_path = options.get_string("json", "");

    hcube::bench::banner(
        "hcube::mbr membership collectives",
        "full-view byte-identity, incomplete-cube verification, and "
        "plan-cache behavior under membership churn");

    std::unique_ptr<hcube::JsonArrayWriter> json;
    if (!json_path.empty()) {
        json = std::make_unique<hcube::JsonArrayWriter>(json_path);
    }
    bool all_verified = true;

    std::printf("full-view byte-identity (member generators vs legacy):\n");
    std::printf("  %-3s %-26s %s\n", "n", "op", "identical");
    for (const IdentityRow& row : run_identity(n)) {
        all_verified = all_verified && row.identical;
        std::printf("  %-3d %-26s %s\n", row.n, row.op.c_str(),
                    row.identical ? "yes" : "NO");
        if (json) {
            json->begin_row();
            json->field("scenario", "identity");
            json->field("n", row.n);
            json->field("op", row.op);
            json->field("identical", row.identical);
            json->field("verified", row.identical);
            json->end_row();
        }
    }

    std::printf("\nincomplete-cube execution (session, byte-verified):\n");
    std::printf("  %-3s %-8s %-10s %-9s %s\n", "n", "members", "op",
                "verified", "ms");
    for (const IncompleteRow& row : run_incomplete(n, block)) {
        all_verified = all_verified && row.verified;
        std::printf("  %-3d %-8u %-10s %-9s %.3f\n", row.n, row.members,
                    row.op.c_str(), row.verified ? "yes" : "NO", row.ms);
        if (json) {
            json->begin_row();
            json->field("scenario", "incomplete");
            json->field("n", row.n);
            json->field("members", static_cast<std::uint64_t>(row.members));
            json->field("op", row.op);
            json->field("seconds", row.ms / 1e3);
            json->field("verified", row.verified);
            json->end_row();
        }
    }

    const ChurnRow storm = run_churn(n, block, churn);
    all_verified = all_verified && storm.verified;
    std::printf(
        "\nchurn storm: %d transitions on n=%d (top-half addresses only)\n"
        "  executes %llu  hits %llu  misses %llu  hit-rate %.1f%%\n"
        "  evictions expected %llu actual %llu (surgical: sub-cube plans "
        "never evicted)\n"
        "  replan latency avg %.3f ms max %.3f ms  -> %s\n",
        storm.transitions, storm.n,
        static_cast<unsigned long long>(storm.executes),
        static_cast<unsigned long long>(storm.hits),
        static_cast<unsigned long long>(storm.misses),
        storm.hit_rate * 100,
        static_cast<unsigned long long>(storm.evictions_expected),
        static_cast<unsigned long long>(storm.evictions_actual),
        storm.replan_avg_ms, storm.replan_max_ms,
        storm.verified ? "verified" : "NOT VERIFIED");
    if (json) {
        json->begin_row();
        json->field("scenario", "churn");
        json->field("n", storm.n);
        json->field("transitions", storm.transitions);
        json->field("executes", storm.executes);
        json->field("hits", storm.hits);
        json->field("misses", storm.misses);
        json->field("hit_rate", storm.hit_rate);
        json->field("evictions_expected", storm.evictions_expected);
        json->field("evictions_actual", storm.evictions_actual);
        json->field("replan_avg_ms", storm.replan_avg_ms);
        json->field("replan_max_ms", storm.replan_max_ms);
        json->field("verified", storm.verified);
        json->end_row();
    }

    if (json && !json->close()) {
        std::fprintf(stderr, "bench_mbr: failed to write %s\n",
                     json_path.c_str());
        return 1;
    }
    if (!all_verified) {
        std::fprintf(stderr, "bench_mbr: UNVERIFIED rows present\n");
        return 1;
    }
    std::printf("\nall rows verified\n");
    return 0;
}
