// Table 6 — personalized communication T_min for SBT/TCBT/BST under one-port
// and all-port communication. Model columns are the paper's closed forms;
// sim columns run the merged-message scatter protocols (one-port rows, large
// B) in the event engine and the cycle-level level-by-level schedules (small
// B, all-port rows) converted to time.
//
// Usage: bench_table6_personalized [--dim N] [--msg elements] [--tau s]
//                                  [--tc s] [--csv path]
#include "bench_util.hpp"

#include "common/check.hpp"
#include "model/personalized_model.hpp"
#include "routing/protocols.hpp"
#include "routing/scatter.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"
#include "trees/tcbt.hpp"

#include <cstdio>

namespace {

using namespace hcube;
using model::Algorithm;

trees::SpanningTree build_tree(Algorithm algo, hc::dim_t n) {
    switch (algo) {
    case Algorithm::sbt: return trees::build_sbt(n, 0);
    case Algorithm::tcbt: return trees::build_tcbt(n, 0);
    case Algorithm::bst: return trees::build_bst(n, 0);
    default: break;
    }
    throw check_error("not a Table 6 algorithm");
}

/// One-port rows: the merged recursive algorithm with unbounded packets.
double simulate_one_port(Algorithm algo, hc::dim_t n, double M,
                         const model::CommParams& comm) {
    sim::EventParams params;
    params.tau = comm.tau;
    params.tc = comm.tc;
    params.packet_capacity = 1e18;
    params.model = sim::PortModel::one_port_full_duplex;
    const trees::SpanningTree tree = build_tree(algo, n);
    sim::EventEngine engine(n, params);
    routing::MergedScatterProtocol protocol(tree, M);
    return engine.run(protocol).completion_time;
}

/// All-port rows: the lemma-4.2 level-by-level schedule at B = M, costed at
/// (τ + M t_c) per routing step.
double simulate_all_port(Algorithm algo, hc::dim_t n, double M,
                         const model::CommParams& comm) {
    const trees::SpanningTree tree = build_tree(algo, n);
    const auto schedule = routing::scatter_all_port(
        tree,
        routing::per_subtree_dest_orders(
            tree, routing::SubtreeOrder::reverse_breadth_first),
        1);
    const auto stats =
        sim::execute_schedule(schedule, sim::PortModel::all_port);
    return stats.makespan * (comm.tau + M * comm.tc);
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<hc::dim_t>(options.get_int("dim", 7));
    const double M = options.get_double("msg", 1024);
    const model::CommParams comm{options.get_double("tau", 1.7e-3),
                                 options.get_double("tc", 2.86e-6)};
    bench::banner("Table 6", "personalized communication T_min, n = " +
                                 std::to_string(n) +
                                 ", M = " + format_fixed(M, 0));

    const std::vector<std::string> header = {"Row", "T_min (model)",
                                             "T (sim)"};
    TextTable table(header);
    auto csv = bench::csv_sink(options, header);

    const struct {
        Algorithm algo;
        bool all_ports;
        const char* name;
    } rows[] = {
        {Algorithm::sbt, false, "SBT, 1 port"},
        {Algorithm::sbt, true, "SBT, logN ports"},
        {Algorithm::tcbt, false, "TCBT, 1 port (<=)"},
        {Algorithm::tcbt, true, "TCBT, logN ports"},
        {Algorithm::bst, false, "BST, 1 port (<=)"},
        {Algorithm::bst, true, "BST, logN ports (~)"},
    };

    for (const auto& spec : rows) {
        const double model_t =
            model::personalized_tmin(spec.algo, spec.all_ports, M, n, comm);
        const double sim_t = spec.all_ports
                                 ? simulate_all_port(spec.algo, n, M, comm)
                                 : simulate_one_port(spec.algo, n, M, comm);
        std::vector<std::string> row = {spec.name, format_seconds(model_t),
                                        format_seconds(sim_t)};
        if (csv) {
            csv->write_row(row);
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nOne-port sims run the recursive merged-message algorithm "
              "(unbounded B); all-port sims\nrun the level-by-level schedule "
              "at B = M. The BST all-port row lands within the max-\n"
              "subtree factor (Table 5 ratio) of the balanced bound; the "
              "SBT/BST all-port gap shows\nthe paper's ~(1/2) log N.");
    return 0;
}
