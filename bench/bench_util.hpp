// Shared helpers for the bench binaries: every binary regenerates one table
// or figure of Ho & Johnsson (ICPP 1986) and prints it in a diffable layout,
// optionally duplicating the series to CSV (--csv <path>).
#pragma once

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

namespace hcube::bench {

/// Prints the standard banner naming the reproduced exhibit.
inline void banner(const std::string& exhibit, const std::string& what) {
    std::printf("== %s — %s ==\n", exhibit.c_str(), what.c_str());
    std::printf("   (Ho & Johnsson, \"Distributed Routing Algorithms for "
                "Broadcasting and Personalized\n"
                "    Communication in Hypercubes\", ICPP 1986)\n\n");
}

/// Optional CSV sink selected by --csv <path>.
inline std::unique_ptr<CsvWriter>
csv_sink(const CliOptions& options, const std::vector<std::string>& header) {
    const std::string path = options.get_string("csv", "");
    if (path.empty()) {
        return nullptr;
    }
    return std::make_unique<CsvWriter>(path, header);
}

} // namespace hcube::bench
