// bench_net — ring vs socket transport comparison for the collective
// runtime: each workload runs once on the in-process barrier engine (the
// ring transport, also the byte-oracle) and once as a multi-process
// net::run_job over Unix-domain sockets (plus one TCP loopback row), with
// the job's assembled memory image byte-compared against the oracle.
//
//   bench_net [--nmin 3] [--nmax 5] [--block 256] [--procs 4]
//             [--tcp 1] [--json <path>] [--csv <path>]
//
// Every row carries "verified": a socket row is verified only when the
// job reported clean on every rank AND its final bytes equal the ring
// oracle's. The process exits nonzero if any row fails — CI greps the
// JSON for `"verified": false` on top of that.
#include "bench_util.hpp"

#include "common/json.hpp"
#include "net/job.hpp"
#include "rt/plan.hpp"
#include "rt/player.hpp"
#include "svc/signature.hpp"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

using hcube::hc::dim_t;
using hcube::hc::node_t;
using hcube::sim::packet_t;

struct Row {
    std::string op;
    std::string family;
    int n = 0;
    std::uint32_t procs = 0;
    std::size_t block_elems = 0;
    packet_t packets = 0;
    std::string transport;
    double seconds = 0;
    double gbps = 0;
    std::uint64_t blocks_delivered = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t dup_suppressed = 0;
    bool verified = false;
};

struct Workload {
    hcube::svc::Op op;
    hcube::svc::Family family;
    packet_t packets; ///< scaled by n for MSBT divisibility
    bool scale_by_n;
};

hcube::svc::Signature make_sig(const Workload& w, dim_t n,
                               std::size_t block) {
    hcube::svc::Signature sig;
    sig.op = w.op;
    sig.family = w.family;
    sig.n = n;
    sig.root = 0;
    sig.packets = w.scale_by_n
                      ? static_cast<packet_t>(w.packets *
                                              static_cast<packet_t>(n))
                      : w.packets;
    sig.block_elems = static_cast<std::uint32_t>(block);
    return sig;
}

/// Byte-compares every slot of the job image against the oracle player.
bool image_matches(const hcube::rt::Plan& plan,
                   const hcube::rt::Player& oracle,
                   const hcube::net::JobResult& job) {
    for (std::uint64_t s = 0; s < plan.total_slots; ++s) {
        const node_t node = plan.slot_node[s];
        const packet_t packet = plan.slot_packet[s];
        const auto expect = oracle.block(node, packet);
        const auto got = job.block(plan, node, packet);
        if (expect.size() != plan.block_elems ||
            got.size() != plan.block_elems ||
            std::memcmp(expect.data(), got.data(),
                        plan.block_elems * sizeof(double)) != 0) {
            return false;
        }
    }
    return true;
}

} // namespace

int main(int argc, char** argv) {
    using namespace hcube;
    const CliOptions options(argc, argv);
    const auto nmin = static_cast<dim_t>(options.get_int("nmin", 3));
    const auto nmax = static_cast<dim_t>(options.get_int("nmax", 5));
    const auto block =
        static_cast<std::size_t>(options.get_int("block", 256));
    const auto procs =
        static_cast<std::uint32_t>(options.get_int("procs", 4));
    const bool with_tcp = options.get_int("tcp", 1) != 0;
    const std::string json_path = options.get_string("json", "");

    bench::banner("net transport",
                  "ring vs socket (uds/tcp) runtime, byte-verified");

    const std::vector<Workload> workloads = {
        {svc::Op::broadcast, svc::Family::sbt, 4, false},
        {svc::Op::broadcast, svc::Family::msbt, 1, true},
        {svc::Op::scatter, svc::Family::bst, 2, false},
        {svc::Op::reduce, svc::Family::sbt, 2, false},
        {svc::Op::alltoall, svc::Family::sbt, 1, false},
    };

    std::vector<Row> rows;
    bool all_verified = true;
    std::printf("%-10s %-5s %2s %5s %6s %-5s %10s %8s %11s %9s %5s\n",
                "op", "fam", "n", "procs", "block", "wire", "seconds",
                "GB/s", "retransmit", "dup-supp", "ok");

    for (const Workload& w : workloads) {
        for (dim_t n = nmin; n <= nmax; ++n) {
            const svc::Signature sig = make_sig(w, n, block);
            const std::uint32_t job_procs =
                std::min<std::uint32_t>(procs, 1u << n);
            const svc::GeneratedSchedule gen = svc::make_schedule(sig);
            const rt::Plan plan = rt::compile_plan(
                gen.exec, gen.mode, sig.block_elems, job_procs);
            rt::Player oracle(plan);
            const rt::PlayStats ring_stats = oracle.play();

            Row ring;
            ring.op = svc::to_string(sig.op);
            ring.family = svc::to_string(sig.family);
            ring.n = n;
            ring.procs = job_procs;
            ring.block_elems = block;
            ring.packets = sig.packets;
            ring.transport = ft::to_string(ring_stats.transport);
            ring.seconds = ring_stats.seconds;
            ring.blocks_delivered = ring_stats.blocks_delivered;
            ring.payload_bytes = ring_stats.payload_bytes;
            ring.gbps = ring_stats.seconds > 0
                            ? static_cast<double>(ring_stats.payload_bytes) /
                                  ring_stats.seconds * 1e-9
                            : 0;
            ring.verified = ring_stats.clean() &&
                            ring_stats.blocks_delivered ==
                                gen.exec.sends.size();
            rows.push_back(ring);

            std::vector<ft::TransportClass> wires = {ft::TransportClass::uds};
            if (with_tcp && n == nmin) {
                wires.push_back(ft::TransportClass::tcp);
            }
            for (const ft::TransportClass wire : wires) {
                net::JobSpec spec;
                spec.sig = sig;
                spec.procs = job_procs;
                spec.transport = wire;
                const net::JobResult job = net::run_job(spec);

                Row r = ring;
                r.transport = ft::to_string(wire);
                r.seconds = job.seconds;
                r.blocks_delivered = 0;
                for (const net::RankReport& rank : job.ranks) {
                    r.blocks_delivered += rank.play.blocks_delivered;
                }
                r.payload_bytes =
                    r.blocks_delivered * plan.block_elems * sizeof(double);
                r.gbps = job.seconds > 0
                             ? static_cast<double>(r.payload_bytes) /
                                   job.seconds * 1e-9
                             : 0;
                r.retransmits = job.wire.retransmits;
                r.dup_suppressed = job.wire.dup_suppressed;
                r.verified = job.ok && image_matches(plan, oracle, job);
                if (!r.verified) {
                    std::fprintf(stderr,
                                 "UNVERIFIED: %s/%s n=%d procs=%u over %s"
                                 "%s%s\n",
                                 r.op.c_str(), r.family.c_str(), n,
                                 job_procs, r.transport.c_str(),
                                 job.error.empty() ? "" : ": ",
                                 job.error.c_str());
                }
                rows.push_back(r);
            }

            for (auto it = rows.end() -
                           static_cast<std::ptrdiff_t>(1 + wires.size());
                 it != rows.end(); ++it) {
                std::printf("%-10s %-5s %2d %5u %6zu %-5s %10.6f %8.3f "
                            "%11llu %9llu %5s\n",
                            it->op.c_str(), it->family.c_str(), it->n,
                            it->procs, it->block_elems,
                            it->transport.c_str(), it->seconds, it->gbps,
                            static_cast<unsigned long long>(
                                it->retransmits),
                            static_cast<unsigned long long>(
                                it->dup_suppressed),
                            it->verified ? "yes" : "NO");
                all_verified = all_verified && it->verified;
            }
        }
    }

    if (auto csv = bench::csv_sink(
            options, {"op", "family", "n", "procs", "block_elems",
                      "packets", "transport", "seconds", "gbytes_per_sec",
                      "retransmits", "dup_suppressed", "verified"})) {
        for (const Row& r : rows) {
            csv->write_row({r.op, r.family, std::to_string(r.n),
                            std::to_string(r.procs),
                            std::to_string(r.block_elems),
                            std::to_string(r.packets), r.transport,
                            std::to_string(r.seconds),
                            std::to_string(r.gbps),
                            std::to_string(r.retransmits),
                            std::to_string(r.dup_suppressed),
                            r.verified ? "1" : "0"});
        }
    }

    if (!json_path.empty()) {
        JsonArrayWriter json(json_path);
        if (!json.ok()) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         json_path.c_str());
            return 1;
        }
        for (const Row& r : rows) {
            json.begin_row();
            json.field("op", r.op);
            json.field("family", r.family);
            json.field("n", r.n);
            json.field("procs", r.procs);
            json.field("block_elems", r.block_elems);
            json.field("packets", r.packets);
            json.field("transport", r.transport);
            json.field("seconds", r.seconds);
            json.field("gbytes_per_sec", r.gbps);
            json.field("blocks_delivered", r.blocks_delivered);
            json.field("payload_bytes", r.payload_bytes);
            json.field("retransmits", r.retransmits);
            json.field("dup_suppressed", r.dup_suppressed);
            json.field("verified", r.verified);
            json.end_row();
        }
        if (json.close()) {
            std::printf("\nwrote %s\n", json_path.c_str());
        }
    }

    if (!all_verified) {
        std::fprintf(stderr, "\nbench_net: verification FAILED\n");
        return 1;
    }
    std::printf("\nall rows byte-verified against the ring oracle\n");
    return 0;
}
