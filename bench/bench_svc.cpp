// Wall-clock benchmark of the collective service (hcube::svc): steady-state
// request throughput of a persistent Service — plan cache, resident worker
// pool, Verify::first oracle policy, request batching — against the
// one-shot rt::Communicator baseline that re-validates, recompiles, and
// oracle-checks every operation.
//
// The workload cycles a small set of repeated signatures (the steady state
// a long-running service actually sees): after one warm-up pass per
// signature the plan cache serves every request, so the measured service
// path is play() + the byte-compare against the entry's oracle image.
// Client concurrency is swept (1, 4, 16); at higher concurrency identical
// queued signatures additionally coalesce into single executions
// (batching), which is where the throughput multiple comes from.
//
// Every request remains byte-verified — a row with "verified": false fails
// this binary (exit 1) and the CI grep gate. The selector rows record the
// calibrated cost model picking the SBT in the small-message regime and
// the MSBT above the measured crossover (Table 3's regimes, live).
//
//   bench_svc [--n 5] [--requests 96] [--block 256] [--queue 256]
//             [--json <path>]
#include "bench_util.hpp"

#include "common/json.hpp"
#include "routing/schedule_export.hpp"
#include "rt/communicator.hpp"
#include "svc/service.hpp"
#include "trees/bst.hpp"
#include "trees/sbt.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace {

using hcube::CliOptions;
using hcube::hc::dim_t;
using hcube::hc::node_t;
using hcube::sim::packet_t;
using namespace hcube::svc;

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double percentile(std::vector<double> values, double p) {
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(values.size() - 1));
    return values[rank];
}

Signature make_sig(Op op, Family family, dim_t n, node_t root,
                   packet_t packets, std::uint32_t block) {
    Signature s;
    s.op = op;
    s.family = family;
    s.n = n;
    s.root = root;
    s.packets = packets;
    s.block_elems = block;
    return s;
}

/// The repeated-signature steady-state mix both sides execute.
std::vector<Signature> workload(dim_t n, std::uint32_t block) {
    const auto np = static_cast<packet_t>(n);
    return {
        make_sig(Op::broadcast, Family::sbt, n, 0, 4, block),
        make_sig(Op::broadcast, Family::msbt, n, 0, 2 * np, block),
        make_sig(Op::scatter, Family::bst, n, 0, 2, block),
        make_sig(Op::reduce, Family::sbt, n, 0, 2, block),
    };
}

struct Measured {
    double ops_per_sec = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    bool verified = true;
    std::string transport = "ring"; ///< medium the measured runs used
};

/// One-shot baseline: the Communicator re-validates the schedule through
/// the cycle executor, recompiles the plan, and runs the barrier oracle
/// next to the async engine on every single request.
Measured run_baseline(dim_t n, const std::vector<Signature>& mix,
                      std::uint32_t block, int requests) {
    hcube::rt::Params params;
    params.block_elems = block;
    hcube::rt::Communicator comm(n, params);
    const auto sbt = hcube::trees::build_sbt(n, 0);
    const auto bst = hcube::trees::build_bst(n, 0);
    const auto run_one = [&](const Signature& sig) {
        switch (sig.op) {
        case Op::broadcast:
            return sig.family == Family::msbt
                       ? comm.broadcast_msbt(sig.root, sig.packets)
                       : comm.broadcast(
                             sbt,
                             hcube::routing::BroadcastDiscipline::
                                 port_oriented,
                             sig.packets);
        case Op::scatter:
            return comm.scatter(bst,
                                hcube::routing::ScatterPolicy::cyclic,
                                sig.packets);
        case Op::reduce:
            return comm.reduce(sbt, sig.packets);
        default: return comm.allgather();
        }
    };
    (void)run_one(mix[0]); // warm the pool and the page cache

    Measured m;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<std::size_t>(requests));
    const double begin = now_seconds();
    for (int i = 0; i < requests; ++i) {
        const double t0 = now_seconds();
        const hcube::rt::Result r =
            run_one(mix[static_cast<std::size_t>(i) % mix.size()]);
        latencies_ms.push_back((now_seconds() - t0) * 1e3);
        m.verified = m.verified && r.verified;
        m.transport = hcube::ft::to_string(r.transport);
    }
    const double elapsed = now_seconds() - begin;
    m.ops_per_sec = elapsed > 0 ? requests / elapsed : 0;
    m.p50_ms = percentile(latencies_ms, 0.50);
    m.p99_ms = percentile(latencies_ms, 0.99);
    return m;
}

struct ServiceMeasured : Measured {
    double cache_hit_rate = 0;
    std::uint64_t batched = 0;
    std::uint64_t executed = 0;
};

ServiceMeasured run_service(dim_t n, const std::vector<Signature>& mix,
                            int requests, int concurrency,
                            std::size_t queue_depth) {
    ServiceParams params;
    params.session.verify = hcube::rt::Verify::first;
    params.queue_depth = queue_depth;
    Service service(n, params);
    std::string transport = "ring";
    for (const Signature& sig : mix) {
        // Warm-up: the one full oracle-checked execution per signature
        // (the cache miss). Everything measured below is steady state.
        const Response warm = service.run(sig);
        if (warm.status != Status::ok) {
            std::fprintf(stderr, "warm-up failed: %s\n",
                         sig.to_string().c_str());
        }
        transport = hcube::ft::to_string(warm.stats.transport);
    }

    ServiceMeasured m;
    m.transport = transport;
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(concurrency));
    std::atomic<bool> all_verified{true};
    const int per_client = requests / concurrency;
    const double begin = now_seconds();
    std::vector<std::thread> clients;
    for (int c = 0; c < concurrency; ++c) {
        clients.emplace_back([&, c] {
            auto& lane = latencies[static_cast<std::size_t>(c)];
            lane.reserve(static_cast<std::size_t>(per_client));
            for (int i = 0; i < per_client; ++i) {
                const Signature& sig =
                    mix[static_cast<std::size_t>(c + i) % mix.size()];
                const double t0 = now_seconds();
                const Response r = service.run(sig);
                lane.push_back((now_seconds() - t0) * 1e3);
                if (r.status != Status::ok || !r.stats.verified) {
                    all_verified.store(false);
                }
            }
        });
    }
    for (auto& t : clients) {
        t.join();
    }
    const double elapsed = now_seconds() - begin;

    std::vector<double> all_ms;
    for (const auto& lane : latencies) {
        all_ms.insert(all_ms.end(), lane.begin(), lane.end());
    }
    const double completed = static_cast<double>(all_ms.size());
    m.ops_per_sec = elapsed > 0 ? completed / elapsed : 0;
    m.p50_ms = percentile(all_ms, 0.50);
    m.p99_ms = percentile(all_ms, 0.99);
    m.verified = all_verified.load();
    // Requests served without compiling a plan: everything except the
    // cache misses (one per distinct signature, during warm-up). Batched
    // riders never touch the cache at all, so this is computed over
    // completed requests rather than raw cache lookups.
    const hcube::CacheStats cache = service.session().cache_stats();
    const double served = completed + static_cast<double>(mix.size());
    m.cache_hit_rate =
        served > 0
            ? (served - static_cast<double>(cache.misses)) / served
            : 0;
    const Service::Counters counters = service.counters();
    m.batched = counters.batched;
    m.executed = counters.executed;
    return m;
}

// ------------------------------------------------- plan footprint sweep --

/// Deterministic mixed-dimension signature population for the residency
/// sweep: `count` distinct signatures over n = 3..10, weighted toward the
/// small cubes a long-running service mostly sees (an entry's resident
/// bytes are dominated by its channel rings, which scale with 2^n), while
/// every dimension up to the 10-cube stays represented. Small cubes cover
/// every valid (op, family) pair and vary root, packet count, and block
/// size; the big cubes stick to single-packet tree collectives at the
/// smallest block so the whole population fits one 64 MiB budget.
std::vector<Signature> sweep_population(std::size_t count) {
    // Per-dimension share of the population, /1200.
    static constexpr struct {
        dim_t n;
        std::size_t share;
    } kQuota[] = {{3, 440}, {4, 350}, {5, 250}, {6, 100},
                  {7, 30},  {8, 12},  {9, 8},   {10, 6}};
    std::set<Signature> unique;
    std::vector<Signature> sigs;
    for (const auto& [n, share] : kQuota) {
        const std::size_t want = std::max<std::size_t>(
            1, sigs.size() + share * count / 1200 > count
                   ? count - sigs.size()
                   : share * count / 1200);
        const auto nodes = node_t{1} << n;
        std::size_t made = 0;
        for (std::size_t j = 0; made < want && j < want * 16; ++j) {
            // Mixed-radix decode of j into (op, root, packets, block):
            // every tuple is distinct until the space is exhausted, so the
            // quota is met without correlated-modulus collisions.
            const std::size_t cases = n >= 7 ? 3 : 8;
            const auto op_case = static_cast<int>(j % cases);
            std::size_t t = j / cases;
            const auto root = static_cast<node_t>(t % nodes);
            t /= nodes;
            const auto pk =
                static_cast<packet_t>(n >= 7 ? 1 : 1 + t % 3);
            t /= 3;
            const auto block = static_cast<std::uint32_t>(
                n >= 7 ? 8 : 8 * (1 + t % 4));
            Signature sig;
            switch (op_case) {
            case 0:
                sig = make_sig(Op::broadcast, Family::sbt, n, root, pk,
                               block);
                break;
            case 1:
                sig = make_sig(Op::scatter, Family::bst, n, root, pk,
                               block);
                break;
            case 2:
                sig = make_sig(Op::gather, Family::sbt, n, root, pk,
                               block);
                break;
            case 3:
                sig = make_sig(Op::scatter, Family::sbt, n, root, pk,
                               block);
                break;
            case 4:
                sig = make_sig(Op::gather, Family::bst, n, root, pk,
                               block);
                break;
            case 5:
                sig = make_sig(Op::reduce, Family::sbt, n, root, pk,
                               block);
                break;
            case 6:
                sig = make_sig(Op::broadcast, Family::msbt, n, root,
                               static_cast<packet_t>(n), block);
                break;
            default:
                sig = n <= 5 ? make_sig(root % 2 == 0 ? Op::allgather
                                                      : Op::alltoall,
                                        Family::sbt, n, 0, 1, block)
                             : make_sig(Op::broadcast, Family::sbt, n,
                                        root, static_cast<packet_t>(4),
                                        block);
                break;
            }
            if (unique.insert(sig).second) {
                sigs.push_back(sig);
                ++made;
            }
        }
        if (sigs.size() >= count) {
            break;
        }
    }
    return sigs;
}

struct SweepMeasured {
    std::size_t signatures = 0;
    std::size_t resident_plans = 0;
    std::uint64_t resident_bytes = 0;
    double bytes_per_plan = 0;
    double compile_ms = 0;
    double hit_rate = 0;
    std::uint64_t evictions = 0;
    bool verified = true;
};

/// Thousand-signature residency: every signature executed once cold, then
/// `passes - 1` more rounds over the whole population under one fixed byte
/// budget. The acceptance bar is >= 1000 plans resident in <= 64 MiB at
/// >= 90% cache hit rate, every request byte-verified.
SweepMeasured run_footprint_sweep(const std::vector<Signature>& sigs,
                                  std::uint64_t budget_bytes, int passes) {
    SessionParams params;
    params.threads = 4;
    params.plan_cache_bytes = budget_bytes;
    Session session(10, params);
    SweepMeasured m;
    m.signatures = sigs.size();
    for (int pass = 0; pass < passes; ++pass) {
        for (const Signature& sig : sigs) {
            const ExecStats stats = session.execute(sig);
            m.verified = m.verified && stats.verified;
        }
    }
    const hcube::CacheStats cache = session.cache_stats();
    const double lookups =
        static_cast<double>(cache.hits + cache.misses);
    m.hit_rate =
        lookups > 0 ? static_cast<double>(cache.hits) / lookups : 0;
    m.evictions = cache.evictions;
    m.resident_plans = session.cached_plans();
    m.resident_bytes = session.cache_resident_bytes();
    m.bytes_per_plan =
        m.resident_plans > 0 ? static_cast<double>(m.resident_bytes) /
                                   static_cast<double>(m.resident_plans)
                             : 0;
    // Compile cost, measured directly on a sample of the population
    // (schedule generation + rt::compile_plan, no execution).
    double compile_seconds = 0;
    std::size_t compiled = 0;
    for (std::size_t i = 0; i < sigs.size(); i += 59) {
        const GeneratedSchedule gen = make_schedule(sigs[i]);
        const double t0 = now_seconds();
        const hcube::rt::Plan plan = hcube::rt::compile_plan(
            gen.exec, gen.mode, sigs[i].block_elems, 4);
        compile_seconds += now_seconds() - t0;
        ++compiled;
        (void)plan;
    }
    m.compile_ms = compiled > 0
                       ? compile_seconds * 1e3 /
                             static_cast<double>(compiled)
                       : 0;
    return m;
}

struct ShrinkMeasured {
    std::uint64_t compact_bytes = 0;
    std::uint64_t pre_pr_bytes = 0;
    double ratio = 0;
};

/// The ISSUE acceptance number: entry resident bytes of the cached
/// sbt_broadcast n=8 plan under the compact encoding, against the pre-PR
/// layout reconstructed analytically — the wide (reference) encoding's
/// entry plus the full per-entry oracle image the cache used to snapshot
/// for move-mode plans (total_slots x block doubles; it now keeps an
/// 8-byte arena fingerprint instead).
ShrinkMeasured measure_sbt8_shrink(std::uint32_t block) {
    const Signature sig =
        make_sig(Op::broadcast, Family::sbt, 8, 0, 4, block);
    SessionParams compact_params;
    compact_params.threads = 4;
    SessionParams wide_params = compact_params;
    wide_params.plan_layout = hcube::rt::PlanLayout::wide;
    Session compact_session(8, compact_params);
    Session wide_session(8, wide_params);
    ShrinkMeasured m;
    m.compact_bytes = compact_session.execute(sig).plan_resident_bytes;
    const std::uint64_t wide_entry =
        wide_session.execute(sig).plan_resident_bytes;
    // Every node holds every packet after a broadcast.
    const std::uint64_t image_bytes =
        (std::uint64_t{1} << 8) * sig.packets * sig.block_elems * 8;
    m.pre_pr_bytes = wide_entry + image_bytes;
    m.ratio = m.compact_bytes > 0
                  ? static_cast<double>(m.pre_pr_bytes) /
                        static_cast<double>(m.compact_bytes)
                  : 0;
    return m;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions options(argc, argv);
    const auto n = static_cast<dim_t>(options.get_int("n", 5));
    const int requests = static_cast<int>(options.get_int("requests", 96));
    const auto block =
        static_cast<std::uint32_t>(options.get_int("block", 256));
    const auto queue_depth =
        static_cast<std::size_t>(options.get_int("queue", 256));
    const std::string json_path = options.get_string("json", "");

    hcube::bench::banner(
        "hcube::svc service throughput",
        "persistent service (plan cache + pool + batching) vs one-shot "
        "rt::Communicator");

    const std::vector<Signature> mix = workload(n, block);
    std::printf("n=%d  requests=%d  block=%u doubles  mix=%zu signatures\n\n",
                n, requests, block, mix.size());

    std::unique_ptr<hcube::JsonArrayWriter> json;
    if (!json_path.empty()) {
        json = std::make_unique<hcube::JsonArrayWriter>(json_path);
    }

    bool verified = true;

    const Measured baseline = run_baseline(n, mix, block, requests);
    verified = verified && baseline.verified;
    std::printf("%-22s %11s %9s %9s %9s %8s %9s\n", "mode", "ops/s",
                "p50 ms", "p99 ms", "speedup", "hit%", "verified");
    std::printf("%-22s %11.1f %9.3f %9.3f %9s %8s %9s\n",
                "communicator(1-shot)", baseline.ops_per_sec,
                baseline.p50_ms, baseline.p99_ms, "1.00", "-",
                baseline.verified ? "yes" : "NO");
    if (json) {
        json->begin_row();
        json->field("mode", "communicator_one_shot");
        json->field("n", n);
        json->field("concurrency", 1);
        json->field("requests", requests);
        json->field("ops_per_sec", baseline.ops_per_sec);
        json->field("p50_ms", baseline.p50_ms);
        json->field("p99_ms", baseline.p99_ms);
        json->field("speedup_vs_baseline", 1.0);
        json->field("transport", baseline.transport);
        json->field("verified", baseline.verified);
        json->end_row();
    }

    for (const int concurrency : {1, 4, 16}) {
        const ServiceMeasured svc =
            run_service(n, mix, requests, concurrency, queue_depth);
        verified = verified && svc.verified;
        const double speedup = baseline.ops_per_sec > 0
                                   ? svc.ops_per_sec / baseline.ops_per_sec
                                   : 0;
        char mode[32];
        std::snprintf(mode, sizeof mode, "service(c=%d)", concurrency);
        std::printf("%-22s %11.1f %9.3f %9.3f %9.2f %8.1f %9s\n", mode,
                    svc.ops_per_sec, svc.p50_ms, svc.p99_ms, speedup,
                    svc.cache_hit_rate * 100,
                    svc.verified ? "yes" : "NO");
        if (json) {
            json->begin_row();
            json->field("mode", "service");
            json->field("n", n);
            json->field("concurrency", concurrency);
            json->field("requests", requests);
            json->field("ops_per_sec", svc.ops_per_sec);
            json->field("p50_ms", svc.p50_ms);
            json->field("p99_ms", svc.p99_ms);
            json->field("speedup_vs_baseline", speedup);
            json->field("cache_hit_rate", svc.cache_hit_rate);
            json->field("batched", svc.batched);
            json->field("executed", svc.executed);
            json->field("transport", svc.transport);
            json->field("verified", svc.verified);
            json->end_row();
        }
    }

    // Plan residency: thousand-signature footprint sweep under one fixed
    // byte budget, and the sbt_broadcast n=8 shrink vs the pre-PR layout.
    const auto sweep_sigs = static_cast<std::size_t>(
        options.get_int("sweep-sigs", 1200));
    const int sweep_passes =
        static_cast<int>(options.get_int("sweep-passes", 11));
    const std::uint64_t sweep_budget = 64ull << 20;
    const std::vector<Signature> population = sweep_population(sweep_sigs);
    const SweepMeasured sweep =
        run_footprint_sweep(population, sweep_budget, sweep_passes);
    const bool sweep_ok =
        sweep.verified && sweep.hit_rate >= 0.90 &&
        sweep.resident_bytes <= sweep_budget &&
        (population.size() < 1000 || sweep.resident_plans >= 1000);
    verified = verified && sweep_ok;
    std::printf("\nplan footprint sweep: %zu signatures (n=3..10), "
                "budget %llu MiB, %d passes\n"
                "  resident %zu plans, %.1f KiB/plan, compile %.3f ms, "
                "hit %.1f%%, evictions %llu -> %s\n",
                sweep.signatures,
                static_cast<unsigned long long>(sweep_budget >> 20),
                sweep_passes, sweep.resident_plans,
                sweep.bytes_per_plan / 1024.0, sweep.compile_ms,
                sweep.hit_rate * 100,
                static_cast<unsigned long long>(sweep.evictions),
                sweep_ok ? "ok" : "FAILED");
    if (json) {
        json->begin_row();
        json->field("mode", "plan_footprint_sweep");
        json->field("signatures",
                    static_cast<std::uint64_t>(sweep.signatures));
        json->field("resident_plans",
                    static_cast<std::uint64_t>(sweep.resident_plans));
        json->field("resident_bytes", sweep.resident_bytes);
        json->field("budget_bytes", sweep_budget);
        json->field("bytes_per_plan", sweep.bytes_per_plan);
        json->field("compile_ms", sweep.compile_ms);
        json->field("cache_hit_rate", sweep.hit_rate);
        json->field("evictions", sweep.evictions);
        json->field("passes", sweep_passes);
        json->field("verified", sweep_ok);
        json->end_row();
    }

    const ShrinkMeasured shrink = measure_sbt8_shrink(block);
    const bool shrink_ok = shrink.ratio >= 4.0;
    verified = verified && shrink_ok;
    std::printf("sbt_broadcast n=8 entry: %llu bytes compact vs %llu "
                "pre-PR (wide + oracle image) -> %.1fx %s\n",
                static_cast<unsigned long long>(shrink.compact_bytes),
                static_cast<unsigned long long>(shrink.pre_pr_bytes),
                shrink.ratio, shrink_ok ? "(>= 4x ok)" : "(< 4x FAILED)");
    if (json) {
        json->begin_row();
        json->field("mode", "plan_compaction");
        json->field("family", "sbt_broadcast");
        json->field("n", 8);
        json->field("block_elems", block);
        json->field("bytes_per_plan",
                    static_cast<double>(shrink.compact_bytes));
        json->field("pre_pr_bytes", shrink.pre_pr_bytes);
        json->field("shrink_ratio", shrink.ratio);
        json->field("verified", shrink_ok);
        json->end_row();
    }

    // Selector regimes under the session's calibrated machine constants:
    // the SBT below the measured crossover, the MSBT above it (Table 3).
    Session session(n, SessionParams{});
    const auto& selector = session.selector();
    const auto model = hcube::sim::PortModel::one_port_full_duplex;
    const std::uint64_t crossover = selector.broadcast_crossover(n, model);
    std::printf("\ncalibrated: tau=%.3g s  tc=%.3g s/elem  "
                "broadcast crossover=%llu elems\n",
                selector.comm_params().tau, selector.comm_params().tc,
                static_cast<unsigned long long>(crossover));
    const std::uint64_t small_m = std::max<std::uint64_t>(1, crossover / 4);
    const std::uint64_t large_m = crossover * 4;
    for (const std::uint64_t elems : {small_m, large_m}) {
        const Selection sel =
            selector.select(Op::broadcast, n, elems, model);
        std::printf("  broadcast of %10llu elems -> %-4s  B_int=%u  "
                    "packets=%u  T=%.3g s (alt %.3g s)\n",
                    static_cast<unsigned long long>(elems),
                    std::string(to_string(sel.family)).c_str(),
                    sel.block_elems, sel.packets, sel.predicted_seconds,
                    sel.rejected_seconds);
        if (json) {
            json->begin_row();
            json->field("mode", "selector");
            json->field("n", n);
            json->field("message_elems", elems);
            json->field("regime",
                        elems < crossover ? "small" : "large");
            json->field("family", std::string(to_string(sel.family)));
            json->field("block_elems", sel.block_elems);
            json->field("packets", sel.packets);
            json->field("predicted_seconds", sel.predicted_seconds);
            json->field("rejected_seconds", sel.rejected_seconds);
            json->field("crossover_elems", crossover);
            json->field("tau", selector.comm_params().tau);
            json->field("tc", selector.comm_params().tc);
            json->field("verified", true);
            json->end_row();
        }
    }

    if (json && !json->close()) {
        std::fprintf(stderr, "failed writing %s\n", json_path.c_str());
        return 1;
    }
    if (!verified) {
        std::fprintf(stderr, "VERIFICATION FAILED\n");
        return 1;
    }
    std::printf("\nall requests byte-verified\n");
    return 0;
}
