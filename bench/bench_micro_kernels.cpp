// Microbenchmarks (google-benchmark) of the pure address arithmetic that
// every routing decision rests on: SBT/MSBT/BST children and parents, the
// base() necklace function, edge labels, schedule generation and the TCBT
// embedding search.
#include "hc/necklace.hpp"
#include "routing/broadcast.hpp"
#include "trees/bst.hpp"
#include "trees/msbt.hpp"
#include "trees/sbt.hpp"
#include "trees/tcbt.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace hcube;

void BM_Base(benchmark::State& state) {
    const auto n = static_cast<hc::dim_t>(state.range(0));
    const hc::node_t mask = (hc::node_t{1} << n) - 1;
    hc::node_t x = 0x2badf00d & mask;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hc::base(x, n));
        x = (x + 0x9e37) & mask;
    }
}
BENCHMARK(BM_Base)->Arg(8)->Arg(16)->Arg(24);

void BM_SbtChildren(benchmark::State& state) {
    const auto n = static_cast<hc::dim_t>(state.range(0));
    const hc::node_t mask = (hc::node_t{1} << n) - 1;
    hc::node_t x = 0x1234 & mask;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trees::sbt_children(x, 0, n));
        x = (x + 1) & mask;
    }
}
BENCHMARK(BM_SbtChildren)->Arg(10)->Arg(20);

void BM_MsbtEdgeLabel(benchmark::State& state) {
    const auto n = static_cast<hc::dim_t>(state.range(0));
    const hc::node_t mask = (hc::node_t{1} << n) - 1;
    hc::node_t x = 1;
    hc::dim_t j = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trees::msbt_edge_label(x, j, 0, n));
        x = (x % mask) + 1;
        j = (j + 1) % n;
    }
}
BENCHMARK(BM_MsbtEdgeLabel)->Arg(10)->Arg(20);

void BM_BstChildren(benchmark::State& state) {
    const auto n = static_cast<hc::dim_t>(state.range(0));
    const hc::node_t mask = (hc::node_t{1} << n) - 1;
    hc::node_t x = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trees::bst_children(x, 0, n));
        x = (x % mask) + 1;
    }
}
BENCHMARK(BM_BstChildren)->Arg(10)->Arg(16);

void BM_BuildSbt(benchmark::State& state) {
    const auto n = static_cast<hc::dim_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(trees::build_sbt(n, 0));
    }
}
BENCHMARK(BM_BuildSbt)->Arg(8)->Arg(12);

void BM_BuildBst(benchmark::State& state) {
    const auto n = static_cast<hc::dim_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(trees::build_bst(n, 0));
    }
}
BENCHMARK(BM_BuildBst)->Arg(8)->Arg(12);

void BM_MsbtFullDuplexSchedule(benchmark::State& state) {
    const auto n = static_cast<hc::dim_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(routing::msbt_broadcast(
            n, 0, 4, sim::PortModel::one_port_full_duplex));
    }
}
BENCHMARK(BM_MsbtFullDuplexSchedule)->Arg(6)->Arg(10);

void BM_TcbtEmbedding(benchmark::State& state) {
    const auto n = static_cast<hc::dim_t>(state.range(0));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        // Vary the seed so the memoization cache does not short-circuit.
        benchmark::DoNotOptimize(trees::build_tcbt(n, 0, seed++));
    }
}
BENCHMARK(BM_TcbtEmbedding)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
